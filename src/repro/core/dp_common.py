"""Shared types for the high-dimensional DP solvers.

Every DP implementation in the library (reference, vectorized, and the
simulator-instrumented engines) produces a :class:`DPResult` over the
same dense table so they can be compared cell-for-cell in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import DPError

#: Sentinel for "no packing reaches this cell".  Large enough that
#: ``UNREACHABLE + 1`` never overflows int64 and never collides with a
#: real machine count.
UNREACHABLE: int = np.iinfo(np.int64).max // 4

#: Narrow table dtypes the solvers may fill with, smallest first.  DP
#: values are machine counts bounded by ``sum(counts)``, so most probes
#: fit comfortably in int16 — a 4x cut in memory traffic per relaxation
#: pass against the historical always-int64 tables.
_TABLE_DTYPES = (np.dtype(np.int16), np.dtype(np.int32), np.dtype(np.int64))


def unreachable_for(dtype: np.dtype) -> int:
    """The per-dtype "no packing" sentinel (``iinfo(dtype).max // 4``).

    Mirrors :data:`UNREACHABLE`'s construction so ``sentinel + 1`` can
    never overflow the narrow dtype either; :func:`widen_table` maps it
    back to the canonical int64 :data:`UNREACHABLE` at the end of a
    fill.
    """
    return int(np.iinfo(dtype).max) // 4


def pick_table_dtype(value_bound: int) -> np.dtype:
    """Smallest table dtype that can hold values up to ``value_bound``.

    ``value_bound`` is the largest finite value a fill can produce —
    ``sum(counts)`` for an exact fill, ``machines + 1`` for a clamped
    decision fill.  The chosen dtype must keep ``value_bound`` strictly
    below its :func:`unreachable_for` sentinel (so real values and the
    sentinel never collide) with headroom for the ``sentinel + 1``
    temporaries the relaxation kernels create.
    """
    bound = int(value_bound)
    for dtype in _TABLE_DTYPES:
        if bound + 2 <= unreachable_for(dtype):
            return dtype
    return _TABLE_DTYPES[-1]


def relaxation_scratch_bytes(sigma: int, dtype: np.dtype) -> int:
    """Transient footprint of one relaxation fill: two full-size buffers.

    The in-place relaxation kernels keep the table plus one same-shape
    scratch buffer alive at once; this is the quantity the ``auto``
    kernel's cost model compares against its memory budget.
    """
    return 2 * int(sigma) * int(dtype.itemsize)


def estimate_fill_bytes(
    counts,
    value_bound: Optional[int] = None,
    fill_workers: Optional[int] = None,
) -> int:
    """Conservative peak-byte estimate for one dense DP fill — no allocation.

    The base estimate is ``sigma * (narrow_itemsize + 8)``: the
    narrow-dtype fill buffer (dtype from :func:`pick_table_dtype` at
    ``value_bound``, default ``sum(counts)``) plus the canonical int64
    table that :func:`widen_table` materialises at the end.

    With ``fill_workers`` set (a host-parallel fill on the
    :mod:`repro.parallel.fabric`), the estimate additionally covers
    what that path allocates: the shared plan-shipment segment holding
    the int64 wave order (``sigma * 8`` — the configs part is smaller
    and already counted by the headroom below), plus each worker's
    transient chunk scratch — coordinates, predecessor indices, and the
    ``best`` buffer for its slice of a wave, ``~(ndim + 2) * 8`` bytes
    per cell across the at-most-``sigma`` cells a wave can hold.

    Everything is arithmetic on the count vector, so admission control
    (:class:`repro.resilience.AdmissionController`) can reject an
    oversized probe *before* any array — or shared-memory segment —
    exists.
    """
    counts = tuple(int(c) for c in counts)
    sigma = 1
    for c in counts:
        sigma *= c + 1
    bound = int(value_bound) if value_bound is not None else sum(counts)
    dtype = pick_table_dtype(bound)
    total = sigma * (int(dtype.itemsize) + int(np.dtype(np.int64).itemsize))
    if fill_workers is not None and int(fill_workers) > 1:
        ndim = len(counts)
        order_segment = sigma * 8
        worker_scratch = sigma * (ndim + 2) * 8
        total += order_segment + worker_scratch
    return total


def widen_table(table: np.ndarray) -> np.ndarray:
    """Upcast a narrow-dtype fill to the canonical int64 table.

    Finite values are exact machine counts and carry over verbatim; the
    narrow dtype's :func:`unreachable_for` sentinel becomes the int64
    :data:`UNREACHABLE`, so the widened table is bit-identical to one
    filled in int64 directly (tested).  int64 input is returned as-is.
    """
    if table.dtype == np.int64:
        return table
    sentinel = unreachable_for(table.dtype)
    wide = table.astype(np.int64)
    wide[table >= sentinel] = UNREACHABLE
    return wide


@dataclass(frozen=True)
class DPResult:
    """Outcome of filling the DP-table for one ``(N, T)`` probe.

    Attributes
    ----------
    table:
        Dense int64 array of shape ``(n_1+1, ..., n_d+1)``.
        ``table[u] = OPT(u)`` — the minimum number of machines that
        schedule the job vector ``u`` within the target — or
        :data:`UNREACHABLE`.  ``table[0,...,0] == 0``.
    configs:
        The ``(num_configs, d)`` configuration set used (Equation 1's
        ``C``), in the library's canonical lexicographic order.
    clamp:
        ``None`` for an exact fill.  For a decision-mode fill
        (:func:`repro.core.kernels.dp_decision`) the saturation value
        ``machines + 1``: every cell whose true ``OPT`` is at least
        ``clamp`` — including unreachable cells — holds exactly
        ``clamp``, while values below it are exact.  Such a table
        answers ``fits(machines)`` and is backtrackable whenever the
        probe accepts, but must not be reused under a different
        machine budget (the probe cache keys clamped tables per
        budget).
    """

    table: np.ndarray
    configs: np.ndarray
    clamp: Optional[int] = None

    def __post_init__(self) -> None:
        if self.table.dtype != np.int64:
            raise DPError(f"DP table must be int64, got {self.table.dtype}")
        if self.configs.ndim != 2:
            raise DPError("configs must be a 2-D array")
        if self.table.ndim != self.configs.shape[1] and self.configs.shape[0] > 0:
            raise DPError(
                f"table has {self.table.ndim} dims but configs have "
                f"{self.configs.shape[1]} components"
            )

    @property
    def shape(self) -> tuple[int, ...]:
        """DP-table shape ``(n_1+1, ..., n_d+1)``."""
        return tuple(self.table.shape)

    @property
    def opt(self) -> int:
        """``OPT(N)`` — machines needed for the full job vector.

        :data:`UNREACHABLE` means no packing exists for this target
        (possible when some single job exceeds ``T``).
        """
        return int(self.table[tuple(s - 1 for s in self.table.shape)])

    @property
    def feasible(self) -> bool:
        """Whether *any* packing of the full job vector exists.

        A clamped table cannot distinguish "needs more than the budget"
        from "no packing at all" — both saturate at :attr:`clamp` — so
        for decision-mode results check :attr:`decided_infeasible`
        first (the probe driver does).
        """
        return self.opt < UNREACHABLE

    @property
    def decided_infeasible(self) -> bool:
        """Decision-mode rejection: the corner cell hit the clamp.

        ``True`` means the fill proved ``OPT(N) > machines`` (or no
        packing exists at all) for the machine budget the table was
        clamped at; always ``False`` for exact fills.
        """
        return self.clamp is not None and self.opt >= self.clamp

    def fits(self, machines: int) -> bool:
        """``OPT(N) <= machines`` — the bisection predicate (Alg. 1 line 11).

        Valid on a clamped table only for budgets below the clamp
        (``machines < clamp``); larger budgets would read saturated
        values as real counts.
        """
        if self.clamp is not None and machines >= self.clamp:
            raise DPError(
                f"table is clamped at {self.clamp}; fits({machines}) is "
                "undecidable — re-solve with a larger machine budget"
            )
        return self.opt <= machines


def empty_dp_result() -> DPResult:
    """Result for the degenerate no-long-jobs case: a 0-d table with OPT=0.

    When the rounding step classifies every job as short, the DP is
    trivial — zero machines are needed for zero long jobs — and the
    bisection predicate reduces to whether the short jobs pack greedily.
    """
    table = np.zeros((), dtype=np.int64)
    return DPResult(table=table, configs=np.zeros((0, 0), dtype=np.int64))
