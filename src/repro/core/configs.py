"""Machine-configuration enumeration (the set ``C`` of Equation 1).

A *machine configuration* is a vector ``(s_1, ..., s_d)`` saying how many
rounded long jobs of each class one machine runs, subject to the rounded
total fitting in the target: ``sum_i s_i * size_i <= T``.  The DP
recurrence subtracts configurations from the remaining-jobs vector, so
the configuration set bounds both the DP's branching factor and — in the
paper's GPU analysis — the per-thread workload (`#subconfig` in
Algorithm 5).

Enumeration is a depth-first product over classes with budget pruning.
Sizes are visited largest-first so infeasible branches die early; the
result is returned as a C-contiguous ``(num_configs, d)`` int64 array in
lexicographic order of the original class order, excluding the all-zero
vector (assigning an empty machine never helps the recurrence).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.rounding import RoundedInstance
from repro.errors import DPError
from repro.observability import context as obs


def enumerate_configurations(
    class_sizes: Sequence[int],
    counts: Sequence[int],
    target: int,
    include_zero: bool = False,
    max_jobs: int | None = None,
) -> np.ndarray:
    """All vectors ``s`` with ``0 <= s_i <= counts[i]`` and ``s . sizes <= target``.

    Parameters
    ----------
    class_sizes:
        Rounded size of each job class (positive, strictly increasing
        not required but typical).
    counts:
        Per-class job counts; configurations never exceed them because a
        machine cannot run more jobs of a class than exist.
    target:
        The makespan budget ``T``.
    include_zero:
        When True, the all-zero configuration is included as row 0
        (useful for tests that count lattice points); the DP never wants
        it.
    max_jobs:
        Optional cardinality cap ``sum_i s_i <= max_jobs`` — the
        B-parameter of the ``time-restricted`` model.  ``None`` (the
        default) leaves the enumeration exactly as before.

    Returns
    -------
    ``(num_configs, d)`` int64 array.  ``d == len(class_sizes)``.  For a
    zero-dimensional instance (no long jobs) returns an empty
    ``(0, 0)`` array.
    """
    sizes = [int(s) for s in class_sizes]
    caps = [int(c) for c in counts]
    if len(sizes) != len(caps):
        raise DPError(
            f"class_sizes (d={len(sizes)}) and counts (d={len(caps)}) disagree"
        )
    if any(s <= 0 for s in sizes):
        raise DPError(f"class sizes must be positive, got {sizes}")
    if any(c < 0 for c in caps):
        raise DPError(f"counts must be non-negative, got {caps}")
    if target < 0:
        raise DPError(f"target must be >= 0, got {target}")
    if max_jobs is not None and int(max_jobs) < 0:
        raise DPError(f"max_jobs must be >= 0, got {max_jobs}")
    d = len(sizes)
    if d == 0:
        return np.zeros((0, 0), dtype=np.int64)

    with obs.phase("configs.enumerate"):
        cap = None if max_jobs is None else int(max_jobs)
        if cap is not None and cap >= sum(caps):
            # Every configuration holds at most sum(counts) jobs, so a
            # cap at or above that filters nothing — drop the slot
            # bookkeeping from the DFS (the non-binding lift's case).
            cap = None
        return _enumerate(sizes, caps, int(target), d, include_zero, cap)


def _enumerate(
    sizes: list[int],
    caps: list[int],
    target: int,
    d: int,
    include_zero: bool,
    max_jobs: int | None = None,
) -> np.ndarray:
    """The DFS enumeration body (validated arguments)."""
    # Visit classes in descending size so the budget shrinks fastest and
    # pruning is maximal; record the permutation to restore class order.
    order = sorted(range(d), key=lambda i: -sizes[i])
    inv = np.argsort(order)

    out: list[list[int]] = []
    current = [0] * d

    def dfs(pos: int, budget: int, slots: int | None) -> None:
        if pos == d:
            out.append(current.copy())
            return
        cls = order[pos]
        size = sizes[cls]
        max_here = min(caps[cls], budget // size)
        if slots is not None:
            max_here = min(max_here, slots)
        for s in range(max_here + 1):
            current[pos] = s
            dfs(pos + 1, budget - s * size, None if slots is None else slots - s)
        current[pos] = 0

    dfs(0, int(target), max_jobs)
    arr = np.asarray(out, dtype=np.int64)
    if arr.size == 0:
        arr = arr.reshape(0, d)
    else:
        arr = arr[:, inv]  # restore original class order
    if not include_zero:
        nonzero = arr.any(axis=1)
        arr = arr[nonzero]
    # Lexicographic order keeps engines and tests deterministic.
    if arr.shape[0] > 1:
        arr = arr[np.lexsort(arr.T[::-1])]
    obs.count("configs.enumerations")
    obs.count("configs.vectors", int(arr.shape[0]))
    return np.ascontiguousarray(arr)


def configurations_for(rounded: RoundedInstance, include_zero: bool = False) -> np.ndarray:
    """Configuration set for a :class:`RoundedInstance` (its own ``T``)."""
    return enumerate_configurations(
        rounded.class_sizes, rounded.counts, rounded.target, include_zero=include_zero
    )


def count_subconfigurations(configs: np.ndarray, cell: np.ndarray) -> int:
    """Number of configurations applicable at a DP cell (``c <= cell``).

    This is the ``#subconfig`` quantity of Algorithm 5 — the per-thread
    workload the paper's data-partitioning scheme balances.
    """
    if configs.shape[0] == 0:
        return 0
    return int(np.count_nonzero((configs <= np.asarray(cell)).all(axis=1)))


def max_jobs_per_machine(configs: np.ndarray) -> int:
    """Largest total job count in any configuration (<= k by the PTAS split)."""
    if configs.shape[0] == 0:
        return 0
    return int(configs.sum(axis=1).max())
