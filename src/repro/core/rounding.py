"""Long/short job split and rounding (Algorithm 1, lines 7–8).

For a target makespan ``T`` and accuracy ``k = ceil(1/eps)``:

* a job is **long** if ``t > T / k`` (at most ``k`` long jobs fit on one
  machine within ``T``), otherwise **short**;
* long jobs are rounded **down** to the nearest multiple of
  ``unit = floor(T / k^2)``, which groups them into at most ~``k^2``
  classes.  Rounding down loses at most ``unit`` per job, and since at
  most ``k`` long jobs share a machine the true load exceeds the rounded
  load by at most ``k * unit <= T / k <= eps * T`` — the source of the
  PTAS's ``(1 + eps)`` guarantee.

The paper indexes the DP-table by a ``k^2``-dimensional count vector but
observes (§IV-A) that only the *non-zero dimensions* matter and that
their number is unknown before execution.  :class:`RoundedInstance`
therefore stores only the occupied classes: ``class_sizes[i]`` is the
rounded size of class ``i`` and ``counts[i]`` how many long jobs fall in
it.  ``counts`` is exactly the vector ``N`` of Algorithms 1–4, restricted
to its non-zero dimensions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.instance import Instance
from repro.errors import InvalidInstanceError


def accuracy_k(eps: float) -> int:
    """``k = ceil(1/eps)`` — the accuracy parameter of the PTAS.

    The paper uses ``eps = 0.3`` (so ``k = 4``, at most ``k^2 = 16``
    dimensions) for all experiments.
    """
    if not (0.0 < eps <= 1.0):
        raise InvalidInstanceError(f"eps must be in (0, 1], got {eps}")
    return math.ceil(1.0 / eps)


def rounding_unit(target: int, k: int) -> int:
    """``floor(T / k^2)``, clamped to at least 1.

    For very small targets (``T < k^2``) the paper's unit would be zero;
    a unit of 1 keeps the arithmetic valid and makes the rounding exact
    (classes are then the raw integer sizes), which only improves the
    approximation.
    """
    if target < 1:
        raise InvalidInstanceError(f"target makespan must be >= 1, got {target}")
    if k < 1:
        raise InvalidInstanceError(f"k must be >= 1, got {k}")
    return max(1, target // (k * k))


@dataclass(frozen=True)
class RoundedInstance:
    """The rounded view of an instance for one target makespan ``T``.

    Attributes
    ----------
    instance: the original instance.
    target: the makespan ``T`` being probed.
    k: accuracy parameter ``ceil(1/eps)``.
    unit: rounding unit ``floor(T/k^2)`` (>= 1).
    class_sizes: rounded processing time of each occupied class,
        strictly increasing.
    counts: number of long jobs in each class (all >= 1) — the vector
        ``N`` restricted to non-zero dimensions.
    long_indices: job indices of long jobs grouped per class, aligned
        with ``class_sizes`` (used to turn a DP solution back into a
        schedule over real jobs).
    short_indices: job indices of short jobs (``t <= T/k``).
    """

    instance: Instance
    target: int
    k: int
    unit: int
    class_sizes: tuple[int, ...]
    counts: tuple[int, ...]
    long_indices: tuple[tuple[int, ...], ...]
    short_indices: tuple[int, ...]

    # -- derived -------------------------------------------------------------

    @property
    def dims(self) -> int:
        """Number of non-zero dimensions of the DP-table."""
        return len(self.class_sizes)

    @property
    def n_long(self) -> int:
        """Total number of long jobs ``n'`` (the number of DP wavefront levels)."""
        return int(sum(self.counts))

    @property
    def table_shape(self) -> tuple[int, ...]:
        """Extent of the DP-table: ``(n_1 + 1, ..., n_d + 1)``."""
        return tuple(c + 1 for c in self.counts)

    @property
    def table_size(self) -> int:
        """``sigma = prod(n_i + 1)`` — total number of DP subproblems."""
        size = 1
        for c in self.counts:
            size *= c + 1
        return size

    def true_size_bound(self, rounded_load: int, jobs_on_machine: int) -> int:
        """Upper bound on a machine's true long-job load given its rounded load.

        Each of the ``jobs_on_machine`` long jobs was rounded down by
        less than ``unit``.
        """
        return rounded_load + jobs_on_machine * self.unit


def round_instance(instance: Instance, target: int, eps: float) -> RoundedInstance:
    """Split ``instance`` into short/long jobs and round the long ones.

    Implements Algorithm 1 lines 7–8 for makespan target ``T = target``.
    Jobs with ``t > T`` make the target trivially infeasible, but the
    rounding itself is still well-defined (the DP will report
    ``OPT > m``); they land in the largest classes.
    """
    k = accuracy_k(eps)
    if target < 1:
        raise InvalidInstanceError(f"target makespan must be >= 1, got {target}")
    unit = rounding_unit(target, k)
    threshold = target / k  # long iff t > T/k

    per_class: dict[int, list[int]] = {}
    short: list[int] = []
    for j, t in enumerate(instance.times):
        if t > threshold:
            cls = t // unit  # floor — round *down* to a multiple of unit
            per_class.setdefault(cls, []).append(j)
        else:
            short.append(j)

    classes = sorted(per_class)
    class_sizes = tuple(int(c * unit) for c in classes)
    # A rounded size of zero can only happen if t < unit, impossible for a
    # long job because t > T/k >= unit * k / ... defensive check anyway:
    if class_sizes and class_sizes[0] == 0:
        raise InvalidInstanceError(
            "internal error: long job rounded to zero (target too small?)"
        )
    counts = tuple(len(per_class[c]) for c in classes)
    long_indices = tuple(tuple(per_class[c]) for c in classes)
    return RoundedInstance(
        instance=instance,
        target=int(target),
        k=k,
        unit=unit,
        class_sizes=class_sizes,
        counts=counts,
        long_indices=long_indices,
        short_indices=tuple(short),
    )
