"""Schedules (machine assignments) and their validation.

A :class:`Schedule` maps every job of an :class:`~repro.core.instance.Instance`
to one machine.  It knows its makespan and can verify feasibility; every
scheduler in the library (PTAS, LPT, MULTIFIT, exact) returns one, so
tests can compare algorithms through a single interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.instance import Instance
from repro.errors import InvalidScheduleError


@dataclass(frozen=True)
class Schedule:
    """An assignment of jobs to machines.

    Attributes
    ----------
    instance:
        The instance this schedule solves.
    assignment:
        ``assignment[j]`` is the machine (``0 <= machine < m``) running
        job ``j``.  Must cover every job exactly once (it is a function
        of job index, so double assignment is impossible by
        construction; completeness and range are validated).
    """

    instance: Instance
    assignment: tuple[int, ...]

    def __post_init__(self) -> None:
        inst = self.instance
        assignment = tuple(int(a) for a in self.assignment)
        if len(assignment) != inst.n_jobs:
            raise InvalidScheduleError(
                f"assignment covers {len(assignment)} jobs, instance has {inst.n_jobs}"
            )
        for j, a in enumerate(assignment):
            if not (0 <= a < inst.machines):
                raise InvalidScheduleError(
                    f"job {j} assigned to machine {a}, valid range is [0, {inst.machines})"
                )
        object.__setattr__(self, "assignment", assignment)

    # -- metrics -------------------------------------------------------------

    def loads(self) -> np.ndarray:
        """Total processing time on each machine (length ``m`` int64 array).

        For identical machines this *is* the completion time; models
        with machine speeds divide it (see :meth:`completion_times`).
        """
        loads = np.zeros(self.instance.machines, dtype=np.int64)
        np.add.at(loads, np.asarray(self.assignment), self.instance.times_array())
        return loads

    def completion_times(self) -> np.ndarray:
        """Completion time of each machine under the instance's model.

        Identical (and time-restricted) machines complete at their
        load; an ``unrelated-few-types`` machine of speed ``s``
        completes load ``L`` at ``ceil(L / s)``.
        """
        loads = self.loads()
        if self.instance.model == "identical":
            return loads
        # Lazy import: repro.models itself builds Schedules.
        from repro.models import get_model

        return get_model(self.instance.model).completion_times(self.instance, loads)

    @property
    def makespan(self) -> int:
        """Maximum machine completion time — the scheduling objective."""
        if self.instance.model == "identical":
            return int(self.loads().max())
        return int(self.completion_times().max())

    @property
    def machines_used(self) -> int:
        """Number of machines with at least one job."""
        return int(np.count_nonzero(self.loads()))

    def jobs_on(self, machine: int) -> tuple[int, ...]:
        """Indices of jobs assigned to ``machine``."""
        if not (0 <= machine < self.instance.machines):
            raise InvalidScheduleError(
                f"machine {machine} out of range [0, {self.instance.machines})"
            )
        return tuple(j for j, a in enumerate(self.assignment) if a == machine)

    def imbalance(self) -> float:
        """Makespan divided by the average load (>= 1.0; 1.0 = perfectly flat)."""
        loads = self.loads()
        mean = loads.mean()
        return float(loads.max() / mean) if mean > 0 else 1.0

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def from_machine_lists(instance: Instance, machine_jobs: Sequence[Iterable[int]]) -> "Schedule":
        """Build a schedule from per-machine job lists.

        ``machine_jobs[i]`` lists the job indices on machine ``i``.
        Raises :class:`InvalidScheduleError` if a job appears twice, is
        missing, or a list index exceeds the machine count.
        """
        if len(machine_jobs) > instance.machines:
            raise InvalidScheduleError(
                f"{len(machine_jobs)} machine lists but instance has {instance.machines} machines"
            )
        assignment = [-1] * instance.n_jobs
        for machine, jobs in enumerate(machine_jobs):
            for j in jobs:
                j = int(j)
                if not (0 <= j < instance.n_jobs):
                    raise InvalidScheduleError(f"job index {j} out of range")
                if assignment[j] != -1:
                    raise InvalidScheduleError(f"job {j} assigned to two machines")
                assignment[j] = machine
        missing = [j for j, a in enumerate(assignment) if a == -1]
        if missing:
            raise InvalidScheduleError(f"jobs {missing[:5]} not assigned to any machine")
        return Schedule(instance, tuple(assignment))

    def __repr__(self) -> str:
        return (
            f"Schedule(makespan={self.makespan}, machines_used={self.machines_used},"
            f" instance={self.instance!r})"
        )
