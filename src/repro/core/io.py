"""Instance and schedule file I/O (plain-text interchange format).

A downstream user wants to feed their own workloads in and get
schedules out without writing Python.  The format is deliberately
minimal and diff-friendly::

    # optional comments
    machines 3
    times 27 19 19 15 12 8 8 5

and for schedules an extra line assigning each job a machine::

    machines 3
    times 27 19 19 15 12 8 8 5
    assignment 0 1 2 0 1 2 2 0

Round-trips are exact (tested); parse errors carry line numbers.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.core.instance import Instance
from repro.core.schedule import Schedule
from repro.errors import InvalidInstanceError

PathLike = Union[str, Path]


def dumps_instance(instance: Instance) -> str:
    """Serialise an instance to the text format."""
    lines = []
    if instance.name:
        lines.append(f"# {instance.name}")
    lines.append(f"machines {instance.machines}")
    lines.append("times " + " ".join(str(t) for t in instance.times))
    return "\n".join(lines) + "\n"


def dumps_schedule(schedule: Schedule) -> str:
    """Serialise a schedule (instance + assignment)."""
    return (
        dumps_instance(schedule.instance)
        + "assignment "
        + " ".join(str(a) for a in schedule.assignment)
        + "\n"
    )


def _parse(text: str) -> dict:
    fields: dict = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        key, _, rest = line.partition(" ")
        if key in fields:
            raise InvalidInstanceError(f"line {lineno}: duplicate field {key!r}")
        if key == "machines":
            try:
                fields[key] = int(rest)
            except ValueError:
                raise InvalidInstanceError(
                    f"line {lineno}: machines must be an integer, got {rest!r}"
                ) from None
        elif key in ("times", "assignment"):
            try:
                fields[key] = tuple(int(x) for x in rest.split())
            except ValueError:
                raise InvalidInstanceError(
                    f"line {lineno}: {key} must be integers, got {rest!r}"
                ) from None
        else:
            raise InvalidInstanceError(f"line {lineno}: unknown field {key!r}")
    return fields


def loads_instance(text: str, name: str = "") -> Instance:
    """Parse an instance from the text format."""
    fields = _parse(text)
    for required in ("machines", "times"):
        if required not in fields:
            raise InvalidInstanceError(f"missing required field {required!r}")
    return Instance(times=fields["times"], machines=fields["machines"], name=name)


def loads_schedule(text: str) -> Schedule:
    """Parse a schedule (instance + assignment) from the text format."""
    fields = _parse(text)
    if "assignment" not in fields:
        raise InvalidInstanceError("missing required field 'assignment'")
    instance = loads_instance(text)
    return Schedule(instance, fields["assignment"])


def save_instance(instance: Instance, path: PathLike) -> None:
    """Write an instance file."""
    Path(path).write_text(dumps_instance(instance))


def load_instance(path: PathLike) -> Instance:
    """Read an instance file; the file stem becomes the instance name."""
    p = Path(path)
    return loads_instance(p.read_text(), name=p.stem)


def save_schedule(schedule: Schedule, path: PathLike) -> None:
    """Write a schedule file."""
    Path(path).write_text(dumps_schedule(schedule))


def load_schedule(path: PathLike) -> Schedule:
    """Read a schedule file (validates the assignment on load)."""
    return loads_schedule(Path(path).read_text())
