"""The paper's primary contribution: the PTAS for ``P || Cmax``.

Public surface re-exported here:

* :class:`~repro.core.instance.Instance` — a scheduling problem.
* :class:`~repro.core.schedule.Schedule` — a machine assignment with
  makespan and feasibility checking.
* :func:`~repro.core.ptas.ptas_schedule` — the Hochbaum–Shmoys PTAS
  (Algorithm 1), parameterised by DP engine and bisection strategy.
* :func:`~repro.core.quarter_split.quarter_split_search` — the paper's
  four-segment bisection (Algorithm 3).
* Baselines: :func:`~repro.core.baselines.lpt.lpt_schedule`,
  :func:`~repro.core.baselines.listsched.list_schedule`,
  :func:`~repro.core.baselines.multifit.multifit_schedule`,
  :func:`~repro.core.baselines.exact.branch_and_bound_optimal`.
"""

from repro.core.instance import Instance, uniform_instance
from repro.core.schedule import Schedule
from repro.core.bounds import makespan_bounds
from repro.core.rounding import RoundedInstance, round_instance
from repro.core.configs import enumerate_configurations
from repro.core.dp_reference import dp_reference
from repro.core.dp_vectorized import dp_vectorized
from repro.core.dp_frontier import dp_frontier
from repro.core.improve import improve_schedule
from repro.core.probe_cache import CacheStats, NullProbeCache, ProbeCache
from repro.core.ptas import PtasResult, ptas_schedule
from repro.core.bisection import bisection_search
from repro.core.quarter_split import quarter_split_search
from repro.core.executor import (
    ConcurrentDeviceExecutor,
    ParallelHostExecutor,
    ProbeExecutor,
    SequentialExecutor,
)
from repro.core.kernels import (
    AutoKernel,
    DecisionKernel,
    FrontierDecisionKernel,
    SweepKernel,
    choose_kernel,
    dp_decision,
    dp_levelsweep,
)

__all__ = [
    "Instance",
    "uniform_instance",
    "Schedule",
    "makespan_bounds",
    "RoundedInstance",
    "round_instance",
    "enumerate_configurations",
    "dp_reference",
    "dp_vectorized",
    "dp_frontier",
    "improve_schedule",
    "ProbeCache",
    "NullProbeCache",
    "CacheStats",
    "PtasResult",
    "ptas_schedule",
    "bisection_search",
    "quarter_split_search",
    "ProbeExecutor",
    "SequentialExecutor",
    "ConcurrentDeviceExecutor",
    "ParallelHostExecutor",
    "AutoKernel",
    "DecisionKernel",
    "FrontierDecisionKernel",
    "SweepKernel",
    "choose_kernel",
    "dp_decision",
    "dp_levelsweep",
]
