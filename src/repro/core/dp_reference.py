"""Reference (pure-Python, level-ordered) high-dimensional DP.

This is a direct transcription of Equation 1 / Algorithm 2: cells are
processed anti-diagonal level by level (``level(u) = sum(u)``), and each
cell takes the minimum over its applicable configurations.  It exists as
the *oracle*: slow but obviously correct, against which the vectorized
solver and every simulator engine are cross-checked cell-for-cell.

Use only on small tables (a few hundred thousand cells at most — but
preferably far fewer); the production path is
:func:`repro.core.dp_vectorized.dp_vectorized`.
"""

from __future__ import annotations

from itertools import product
from typing import Sequence

import numpy as np

from repro.core.configs import enumerate_configurations
from repro.core.dp_common import DPResult, UNREACHABLE, empty_dp_result
from repro.core.rounding import RoundedInstance
from repro.errors import DPError
from repro.observability import context as obs


def dp_reference(
    counts: Sequence[int],
    class_sizes: Sequence[int],
    target: int,
    configs: np.ndarray | None = None,
    model_token: tuple | None = None,
) -> DPResult:
    """Fill the DP-table by explicit wavefront iteration (Algorithm 2).

    Parameters
    ----------
    counts:
        The job-count vector ``N = (n_1, ..., n_d)`` (non-zero dims only).
    class_sizes:
        Rounded size of each class, aligned with ``counts``.
    target:
        Makespan budget ``T``.
    configs:
        Optional pre-enumerated configuration set; enumerated from the
        arguments when omitted.

    Returns
    -------
    :class:`DPResult` with the full dense table.
    """
    counts = tuple(int(c) for c in counts)
    if len(counts) != len(class_sizes):
        raise DPError("counts and class_sizes must have equal length")
    if len(counts) == 0:
        return empty_dp_result()
    if model_token is not None and configs is None:
        raise DPError(
            "model-filtered probes must supply their configuration set"
        )
    if configs is None:
        configs = enumerate_configurations(class_sizes, counts, target)

    shape = tuple(c + 1 for c in counts)
    table = np.full(shape, UNREACHABLE, dtype=np.int64)
    origin = (0,) * len(counts)
    table[origin] = 0

    config_rows = [tuple(int(x) for x in row) for row in configs]

    # Group cells by anti-diagonal level; levels run 0 .. sum(counts).
    # Within a level cells are independent (configurations are non-zero,
    # so every dependency points to a strictly lower level).
    cells_by_level: dict[int, list[tuple[int, ...]]] = {}
    for cell in product(*(range(s) for s in shape)):
        cells_by_level.setdefault(sum(cell), []).append(cell)

    for level in range(1, sum(counts) + 1):
        for cell in cells_by_level.get(level, ()):
            best = UNREACHABLE
            for cfg in config_rows:
                prev = tuple(u - s for u, s in zip(cell, cfg))
                if any(p < 0 for p in prev):
                    continue
                val = table[prev]
                if val < best:
                    best = val
            if best < UNREACHABLE:
                table[cell] = best + 1
    obs.count("dp.reference.calls")
    obs.count("dp.reference.cells", table.size)
    return DPResult(table=table, configs=configs)


def dp_reference_for(rounded: RoundedInstance, configs: np.ndarray | None = None) -> DPResult:
    """Reference DP on a :class:`RoundedInstance`."""
    return dp_reference(rounded.counts, rounded.class_sizes, rounded.target, configs)
