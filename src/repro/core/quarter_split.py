"""The paper's quarter-split target search (Algorithm 3).

Instead of probing one midpoint per iteration, the interval ``[LB, UB]``
is divided into four contiguous segments; each segment contributes its
own midpoint target ``T_p`` and all four are probed *concurrently* (on
the GPU via four Hyper-Q process queues — here the
:class:`~repro.core.executor.ConcurrentDeviceExecutor` models that
concurrency for the simulated engines, and the
:class:`~repro.core.executor.ParallelHostExecutor` realises it for the
pure host kernels, genuinely overlapping the four probes on a thread
pool; the search logic below is hardware-agnostic).

With four probe outcomes the new interval falls into one of five
sections (Algorithm 3, lines 13–25):

* all accepted                    → ``UB = T_0``
* all rejected                    → ``LB = T_3 + 1``
* rejected at ``T_i``, accepted at ``T_{i+1}`` → ``LB = T_i + 1``, ``UB = T_{i+1}``

so the interval shrinks by ~4–8x per iteration instead of 2x, which is
what cuts the iteration counts in Table VII.  Both searches converge to
the same smallest accepted target (tested); the returned schedules can
differ slightly because each search keeps the best schedule among *its
own* accepted probes, and the quarter split probes more targets.

The update rule is implemented in the slightly more general
"smallest accepted / largest rejected" form, which coincides with the
paper's rule whenever acceptance is monotone in ``T`` (the normal case)
and remains sound even if a probe behaves non-monotonically.

Each iteration's segment targets are submitted as **one round** to the
:class:`~repro.core.executor.ProbeExecutor`, so a device executor
charges the round as concurrent work while a sequential executor sums
it — the same search loop serves Table VII's GPU timing and the plain
host run (the GPU runner used to keep a private copy of this loop just
for that; it no longer exists).
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import TYPE_CHECKING, Optional, Union

from repro.core.bounds import MakespanBounds, makespan_bounds
from repro.core.dp_vectorized import dp_vectorized
from repro.core.instance import Instance
from repro.core.ptas import DPSolver, ProbeResult, PtasResult
from repro.core.search_common import finalize_search
from repro.errors import ReproError
from repro.observability import Tracer, TraceSink, as_tracer
from repro.observability import context as obs

if TYPE_CHECKING:
    from repro.core.executor import ProbeExecutor
    from repro.core.probe_cache import ProbeCache

#: Number of concurrent interval segments.  The paper fixes this at 4
#: ("quarter split") to match the 4 Hyper-Q process queues it uses.
DEFAULT_SEGMENTS = 4


def segment_targets(lb: int, ub: int, segments: int = DEFAULT_SEGMENTS) -> list[int]:
    """The probe targets ``T_p`` for the current interval.

    Each segment ``[LB_p, UB_p]`` (tiling ``[lb, ub]``) contributes its
    midpoint.  Degenerate segments collapse to their single point;
    duplicate targets (possible when the interval is narrower than the
    segment count) are dropped while preserving ascending order, so no
    DP probe is wasted on a repeated target.

    The ascending order also matters for table-delta warm starts
    (:class:`~repro.core.probe_cache.ProbeCache`): a sequential
    executor runs the round smallest target first, so each later probe
    of the round finds a cached table at a strictly smaller budget to
    seed from when its rounding key matches.
    """
    pieces = MakespanBounds(lb, ub).quarter_points(segments)
    targets: list[int] = []
    for seg_lb, seg_ub in pieces:
        t = (seg_lb + seg_ub) // 2
        if not targets or t > targets[-1]:
            targets.append(t)
    return targets


def quarter_split_search(
    instance: Instance,
    eps: float = 0.3,
    dp_solver: DPSolver = dp_vectorized,
    segments: int = DEFAULT_SEGMENTS,
    cache: Optional["ProbeCache"] = None,
    trace: Optional[Union[Tracer, TraceSink]] = None,
    executor: Optional["ProbeExecutor"] = None,
) -> PtasResult:
    """Run the PTAS with the quarter-split search; see module docstring.

    ``cache`` and ``trace`` are the cross-probe cache and observability
    hooks of :func:`repro.core.ptas.ptas_schedule`; ``executor`` runs
    each iteration's segment probes as one round (default
    :class:`~repro.core.executor.SequentialExecutor`; pass a
    :class:`~repro.core.executor.ConcurrentDeviceExecutor` to charge
    them as concurrent device work).  None of the three changes the
    result.  One cache serves all ``segments`` concurrent probes of an
    iteration — nearby targets frequently normalize to the same rounded
    geometry, so segment probes feed each other's lookups.
    """
    tracer = as_tracer(trace)
    with tracer.activate() if tracer is not None else nullcontext():
        return _quarter_split_search(
            instance, eps, dp_solver, segments, cache, executor
        )


def _quarter_split_search(
    instance: Instance,
    eps: float,
    dp_solver: DPSolver,
    segments: int,
    cache: Optional["ProbeCache"],
    executor: Optional["ProbeExecutor"],
) -> PtasResult:
    from repro.core.executor import SequentialExecutor

    executor = executor if executor is not None else SequentialExecutor()
    bounds = makespan_bounds(instance)
    lb, ub = bounds.lower, bounds.upper

    probes: list[ProbeResult] = []
    best_accept: Optional[ProbeResult] = None
    iterations = 0

    while lb < ub:
        iterations += 1
        obs.count("search.iterations")
        targets = segment_targets(lb, ub, segments)
        round_probes = executor.run_round(instance, targets, eps, dp_solver, cache=cache)
        probes.extend(round_probes)

        accepted = [p for p in round_probes if p.accepted]
        rejected = [p for p in round_probes if not p.accepted]

        if accepted:
            lowest = min(accepted, key=lambda p: p.target)
            ub = lowest.target
            if best_accept is None or lowest.target <= best_accept.target:
                best_accept = lowest
        rejected_below = [p for p in rejected if p.target < ub]
        if rejected_below:
            lb = max(p.target for p in rejected_below) + 1
        elif not accepted:
            # All probes rejected: the answer lies above the largest target.
            lb = max(p.target for p in round_probes) + 1
        if not accepted and not rejected:
            raise ReproError("quarter split produced no probes")  # unreachable

    return finalize_search(
        "quarter split",
        instance,
        eps,
        dp_solver,
        executor,
        cache,
        probes,
        best_accept,
        ub,
        iterations,
    )
