"""Discrete-event GPU simulator (the paper's K40 testbed, substituted).

The paper's results hinge on how the DP maps onto GPU hardware: warps,
streams/Hyper-Q, kernel-launch overhead, global-memory coalescing, and
dynamic parallelism.  No GPU is available in this environment, so this
package provides a device model that executes the *same decomposition*
the paper describes and charges simulated time for exactly the effects
the paper reasons about (see DESIGN.md §2 for the substitution
rationale).

The simulator is generic — kernels carry abstract work descriptions —
so it is reusable beyond the scheduling DP (e.g. the future-work
knapsack example ships one).
"""

from repro.gpusim.spec import DeviceSpec, KEPLER_K20, KEPLER_K40, MODERN_DATACENTER
from repro.gpusim.memory import MemoryModel, AccessPattern, transactions_for_addresses
from repro.gpusim.kernel import KernelSpec, warp_compute_times
from repro.gpusim.engine import GpuSimulator
from repro.gpusim.metrics import GpuMetrics
from repro.gpusim.trace import TraceRecorder, render_timeline

__all__ = [
    "DeviceSpec",
    "KEPLER_K20",
    "KEPLER_K40",
    "MODERN_DATACENTER",
    "MemoryModel",
    "AccessPattern",
    "transactions_for_addresses",
    "KernelSpec",
    "warp_compute_times",
    "GpuSimulator",
    "GpuMetrics",
    "TraceRecorder",
    "render_timeline",
]
