"""Kernel work descriptions for the GPU simulator.

A :class:`KernelSpec` is what the engines hand the simulator: the
per-thread compute times of the kernel's threads (already including any
dynamic-parallelism children folded into their parent thread — see
:mod:`repro.engines.gpu_partitioned`), plus memory traffic terms.  The
simulator derives warp timings from it:

* threads are packed into warps of ``warp_size``;
* a warp runs as long as its **slowest** thread — lockstep execution,
  so intra-warp workload imbalance is paid in full.  This is precisely
  the "thread-level workload balancing issue" of §III-B, and the reason
  the data-partitioning scheme groups similar cells into blocks.

:func:`warp_compute_times` implements that reduction vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.gpusim.memory import AccessPattern


def warp_compute_times(thread_times: np.ndarray, warp_size: int) -> np.ndarray:
    """Per-warp durations: max over each consecutive group of ``warp_size``.

    The trailing partial warp still costs its slowest thread — idle
    lanes in a warp are not reclaimed (SIMT).
    """
    if warp_size < 1:
        raise SimulationError(f"warp_size must be >= 1, got {warp_size}")
    t = np.asarray(thread_times, dtype=np.float64).ravel()
    if (t < 0).any():
        raise SimulationError("thread times must be non-negative")
    if t.size == 0:
        return np.zeros(0, dtype=np.float64)
    n_warps = -(-t.size // warp_size)
    padded = np.full(n_warps * warp_size, 0.0)
    padded[: t.size] = t
    return padded.reshape(n_warps, warp_size).max(axis=1)


@dataclass(frozen=True)
class KernelSpec:
    """One kernel launch's worth of work.

    Attributes
    ----------
    name: label for traces and metrics.
    thread_times: per-thread compute seconds (device lane time).
    mem_elements: DP cells read/written from global memory.
    mem_pattern: coalescing regime of that traffic.
    dynamic_children: number of device-side child launches performed by
        this kernel's threads (dynamic parallelism).  Charged the
        device-launch overhead; the children's *work* is already folded
        into ``thread_times``.
    mem_footprint_bytes: scratch allocation the kernel holds while
        running (for out-of-memory accounting, §III-C).
    """

    name: str
    thread_times: np.ndarray
    mem_elements: int = 0
    mem_pattern: AccessPattern = AccessPattern.COALESCED
    dynamic_children: int = 0
    mem_footprint_bytes: int = 0

    def __post_init__(self) -> None:
        t = np.asarray(self.thread_times, dtype=np.float64).ravel()
        if (t < 0).any():
            raise SimulationError(f"kernel {self.name!r} has negative thread times")
        if self.mem_elements < 0 or self.dynamic_children < 0 or self.mem_footprint_bytes < 0:
            raise SimulationError(f"kernel {self.name!r} has negative work terms")
        if t.size == 0 and self.dynamic_children > 0:
            raise SimulationError(
                f"kernel {self.name!r} has no threads but launches children"
            )
        object.__setattr__(self, "thread_times", t)

    @property
    def num_threads(self) -> int:
        """Threads launched by this kernel."""
        return int(self.thread_times.size)

    def num_warps(self, warp_size: int) -> int:
        """Warps occupied (ceil of threads / warp size)."""
        return -(-self.num_threads // warp_size) if self.num_threads else 0

    def divergence_ratio(self, warp_size: int) -> float:
        """Warp-seconds paid / thread-seconds of useful work (>= 1.0).

        1.0 means perfectly balanced warps; large values quantify the
        §III-B imbalance (e.g. cell (1,2,1) vs (0,0,4) in one warp).
        """
        useful = float(self.thread_times.sum())
        if useful == 0.0:
            return 1.0
        paid = float(warp_compute_times(self.thread_times, warp_size).sum()) * warp_size
        return paid / useful
