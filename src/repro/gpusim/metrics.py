"""Counters accumulated by the GPU simulator during a run."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class GpuMetrics:
    """Aggregate statistics of one simulated GPU execution.

    The engines surface these in benchmark reports: ``utilization``
    quantifies the idle-core effect of narrow wavefront levels (§III-E),
    ``avg_bus_utilization`` the coalescing gain, and
    ``launch_overhead_s`` the price of the many small kernels the
    blocked scheme launches (§III-E "side-effects").
    """

    kernels_launched: int = 0
    dynamic_kernels_launched: int = 0
    warp_seconds_paid: float = 0.0
    thread_seconds_useful: float = 0.0
    launch_overhead_s: float = 0.0
    mem_transactions: int = 0
    mem_bytes_moved: int = 0
    mem_bytes_useful: int = 0
    peak_footprint_bytes: int = 0
    elapsed_s: float = 0.0
    _slot_seconds_available: float = 0.0

    @property
    def utilization(self) -> float:
        """Fraction of available warp-slot time spent executing warps."""
        if self._slot_seconds_available <= 0:
            return 0.0
        return min(1.0, self.warp_seconds_paid / self._slot_seconds_available)

    #: Lanes per warp, set by the simulator so divergence is unitless.
    warp_size: int = 32

    @property
    def divergence_overhead(self) -> float:
        """Lane-seconds paid / useful thread-seconds (>= 1; 1 = no divergence).

        A warp of ``warp_size`` lanes pays ``warp_size * max(thread
        times)`` lane-seconds regardless of how unbalanced its threads
        are; this ratio is the §III-B imbalance cost.
        """
        if self.thread_seconds_useful <= 0:
            return 1.0
        return self.warp_seconds_paid * self.warp_size / self.thread_seconds_useful

    @property
    def avg_bus_utilization(self) -> float:
        """Useful payload / bytes moved across the whole run."""
        if self.mem_bytes_moved <= 0:
            return 1.0
        return self.mem_bytes_useful / self.mem_bytes_moved

    def as_dict(self) -> dict:
        """Plain-dict view for the records/reporting layer."""
        return {
            "kernels_launched": self.kernels_launched,
            "warp_seconds_paid": self.warp_seconds_paid,
            "dynamic_kernels_launched": self.dynamic_kernels_launched,
            "elapsed_s": self.elapsed_s,
            "utilization": self.utilization,
            "divergence_overhead": self.divergence_overhead,
            "launch_overhead_s": self.launch_overhead_s,
            "mem_transactions": self.mem_transactions,
            "mem_bytes_moved": self.mem_bytes_moved,
            "avg_bus_utilization": self.avg_bus_utilization,
            "peak_footprint_bytes": self.peak_footprint_bytes,
        }
