"""Device specifications for the GPU simulator.

:data:`KEPLER_K40` mirrors the card used in the paper's experiments
(§IV-A: "an Nvidia K40, which has 12 GB memory, 2880 cores and a clock
rate of 745 MHz").  The remaining parameters (SM count, warp size,
Hyper-Q width, launch overheads, memory characteristics) come from the
public Kepler GK110 whitepaper the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class DeviceSpec:
    """Static hardware description consumed by the simulator.

    Attributes
    ----------
    name: human-readable label for reports.
    num_sms: streaming multiprocessors.
    cores_per_sm: CUDA cores per SM.
    clock_hz: core clock.
    warp_size: threads per warp (32 on every NVIDIA GPU).
    max_concurrent_kernels: Hyper-Q width — concurrent kernel limit.
    global_mem_bytes: device memory capacity (allocation checking).
    mem_bandwidth_bytes_per_s: peak global-memory bandwidth.
    mem_line_bytes: memory transaction size (L1/L2 line).
    mem_latency_s: latency of one uncached global transaction.
    mem_max_inflight: transactions the device overlaps per SM —
        converts latency into an effective random-access bandwidth.
    kernel_launch_overhead_s: host-side launch cost per kernel.
    dynamic_launch_overhead_s: device-side (dynamic parallelism) launch
        cost — cheaper than a host launch but charged per child kernel.
    dynamic_sync_overhead_s: cost of the parent kernel waiting for its
        dynamic children to drain before retiring (the per-level
        ``cudaDeviceSynchronize`` of Algorithm 5 line 9) — charged once
        per kernel that launched children.  Dominates when the schedule
        is a long chain of small kernels (mid-size tables), vanishes
        relative to compute on large ones.
    cycles_per_op: average core cycles per abstract DP operation
        (compare/add on int lanes, including instruction overhead).
    """

    name: str
    num_sms: int
    cores_per_sm: int
    clock_hz: float
    warp_size: int = 32
    max_concurrent_kernels: int = 32
    global_mem_bytes: int = 12 * 1024**3
    mem_bandwidth_bytes_per_s: float = 288e9
    mem_line_bytes: int = 128
    mem_latency_s: float = 5e-7
    mem_max_inflight: int = 8
    kernel_launch_overhead_s: float = 3e-5
    dynamic_launch_overhead_s: float = 4e-6
    dynamic_sync_overhead_s: float = 5e-5
    cycles_per_op: float = 8.0

    def __post_init__(self) -> None:
        if self.num_sms < 1 or self.cores_per_sm < 1:
            raise SimulationError("device must have at least one SM and one core")
        if self.warp_size < 1:
            raise SimulationError("warp size must be >= 1")
        if self.clock_hz <= 0 or self.mem_bandwidth_bytes_per_s <= 0:
            raise SimulationError("clock and bandwidth must be positive")
        if self.cores_per_sm % self.warp_size != 0:
            raise SimulationError(
                f"cores_per_sm ({self.cores_per_sm}) must be a multiple of "
                f"warp_size ({self.warp_size})"
            )

    @property
    def total_cores(self) -> int:
        """All CUDA cores on the device."""
        return self.num_sms * self.cores_per_sm

    @property
    def warp_slots(self) -> int:
        """Warps the device can *execute* simultaneously.

        One warp occupies ``warp_size`` cores, so the device issues
        ``total_cores / warp_size`` warps per cycle.  (Real SMs keep
        more warps *resident* to hide latency; latency hiding is
        modelled separately via ``mem_max_inflight``.)
        """
        return self.total_cores // self.warp_size

    @property
    def op_time_s(self) -> float:
        """Simulated seconds for one abstract operation on one lane."""
        return self.cycles_per_op / self.clock_hz

    def random_access_bandwidth(self) -> float:
        """Effective bytes/s when every access is an uncoalesced line.

        With ``mem_max_inflight`` transactions overlapped per SM, the
        device completes ``num_sms * inflight / latency`` lines per
        second; the useful payload of each is one element, but the cost
        is a full line — the 'strided access' penalty of §III-B.
        """
        lines_per_s = self.num_sms * self.mem_max_inflight / self.mem_latency_s
        return min(lines_per_s * self.mem_line_bytes, self.mem_bandwidth_bytes_per_s)


#: The paper's GPU (§IV-A), parameters per the GK110 whitepaper.
KEPLER_K40 = DeviceSpec(
    name="NVIDIA Tesla K40 (Kepler GK110B)",
    num_sms=15,
    cores_per_sm=192,
    clock_hz=745e6,
)

#: The K40's smaller sibling — used by the sensitivity study to ask how
#: the paper's conclusions depend on device size (fewer SMs, less
#: memory, lower bandwidth; same Kepler cost structure).
KEPLER_K20 = DeviceSpec(
    name="NVIDIA Tesla K20 (Kepler GK110)",
    num_sms=13,
    cores_per_sm=192,
    clock_hz=706e6,
    global_mem_bytes=5 * 1024**3,
    mem_bandwidth_bytes_per_s=208e9,
)

#: A hypothetical modern datacenter GPU expressed in the same cost
#: model: ~2x clock, ~7x SMs, ~3x bandwidth, much cheaper kernel
#: launches, deeper per-SM memory-level parallelism.  Used only for the
#: forward-looking sensitivity study — would the paper's crossover
#: still exist on newer hardware?
MODERN_DATACENTER = DeviceSpec(
    name="modern datacenter GPU (hypothetical, same cost model)",
    num_sms=108,
    cores_per_sm=64,
    clock_hz=1.41e9,
    global_mem_bytes=40 * 1024**3,
    mem_bandwidth_bytes_per_s=1.5e12,
    mem_latency_s=3e-7,
    mem_max_inflight=32,
    kernel_launch_overhead_s=6e-6,
    dynamic_launch_overhead_s=1e-6,
    dynamic_sync_overhead_s=1.5e-5,
    cycles_per_op=4.0,
)
