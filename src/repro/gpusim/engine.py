"""The discrete-event GPU execution engine.

The simulator schedules :class:`~repro.gpusim.kernel.KernelSpec` launches
onto a :class:`~repro.gpusim.spec.DeviceSpec` at *kernel granularity*:

* **Streams** are FIFO — a kernel starts no earlier than its stream's
  previous kernel finished (CUDA stream semantics).
* **Hyper-Q** caps how many kernels run concurrently
  (``max_concurrent_kernels``, 32 on Kepler) at every instant.
* **Warp slots** are the compute resource: the device executes
  ``warp_slots`` warps simultaneously (90 on the K40).  A kernel is
  granted ``min(its warps, available)`` slots, and placement guarantees
  the grant is available for the kernel's *entire* duration — the
  device never overcommits (property-tested).  Fixing the grant for the
  kernel's lifetime is a deliberate simplification: it slightly
  understates concurrency when a big kernel finishes mid-way through a
  small one, making the simulated GPU pessimistic, never optimistic.
* **Duration** = host launch overhead
  + max(total warp-seconds / granted slots, longest single warp)
  + dynamic-parallelism child-launch overhead and child-drain sync
  + global-memory transfer time (coalescing-aware,
  :class:`~repro.gpusim.memory.MemoryModel`).

``synchronize()`` is ``cudaDeviceSynchronize``: advances simulated time
past every outstanding kernel.  Placement is deterministic, so two runs
of the same engine produce identical simulated times.

Implementation note: the engines launch tens of thousands of kernels
between synchronizations (one per block and in-block level), so the
placement queries (overlap, free slots, concurrency) run on flat numpy
buffers with the *overlapping-records-only* observation: only records
whose end exceeds the query time can constrain it, and stream FIFO
keeps that set small.  The Python-level work per launch is proportional
to that small set, with one vectorized mask over the buffers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.gpusim.kernel import KernelSpec, warp_compute_times
from repro.gpusim.memory import MemoryModel
from repro.gpusim.metrics import GpuMetrics
from repro.gpusim.spec import DeviceSpec, KEPLER_K40


@dataclass
class _Running:
    """A kernel occupying the device during ``[start, end)``."""

    start: float
    end: float
    slots: int
    footprint: int


class _RecordBuffers:
    """Growable flat arrays mirroring the committed placements.

    Enables O(n) vectorized overlap masks instead of O(n) Python loops
    per query (which would be quadratic across a launch burst).
    """

    def __init__(self) -> None:
        self._cap = 256
        self.start = np.empty(self._cap, dtype=np.float64)
        self.end = np.empty(self._cap, dtype=np.float64)
        self.slots = np.empty(self._cap, dtype=np.int64)
        self.footprint = np.empty(self._cap, dtype=np.int64)
        self.n = 0

    def append(self, start: float, end: float, slots: int, footprint: int) -> None:
        if self.n == self._cap:
            self._cap *= 2
            for name in ("start", "end", "slots", "footprint"):
                old = getattr(self, name)
                new = np.empty(self._cap, dtype=old.dtype)
                new[: self.n] = old[: self.n]
                setattr(self, name, new)
        i = self.n
        self.start[i] = start
        self.end[i] = end
        self.slots[i] = slots
        self.footprint[i] = footprint
        self.n += 1

    def clear(self) -> None:
        self.n = 0

    def overlapping(self, lo: float) -> np.ndarray:
        """Indices of records whose interval may intersect ``[lo, inf)``."""
        return np.flatnonzero(self.end[: self.n] > lo)


class GpuSimulator:
    """Deterministic discrete-event model of one GPU.

    Typical engine usage::

        sim = GpuSimulator()
        for level_blocks in partition.iter_block_levels():
            for i, block in enumerate(level_blocks):
                sim.launch(make_kernel(block), stream=i % 4)
            sim.synchronize()
        elapsed = sim.now
    """

    def __init__(
        self,
        spec: DeviceSpec = KEPLER_K40,
        element_bytes: int = 8,
        check_memory: bool = True,
    ) -> None:
        self.spec = spec
        self.memory = MemoryModel(spec, element_bytes=element_bytes)
        self.check_memory = check_memory
        self.metrics = GpuMetrics()
        self._stream_ready: dict[int, float] = {}
        self._active: list[_Running] = []  # kept for the tracer / tests
        self._buf = _RecordBuffers()
        self._max_end = 0.0
        self._now = 0.0  # host-visible time: last synchronize

    # -- public API ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Simulated seconds since construction (device timeline)."""
        return max(self._now, self._max_end)

    def launch(self, kernel: KernelSpec, stream: int = 0) -> float:
        """Asynchronously launch ``kernel`` on ``stream``; return its end time.

        The host does not block (CUDA launch semantics); the returned
        end time is for instrumentation only.  Placement guarantees the
        device never overcommits: the kernel's slot grant is available
        for its *entire* duration and the Hyper-Q concurrency cap holds
        at every instant (property-tested).
        """
        mem_s = self.memory.transfer_time(kernel.mem_elements, kernel.mem_pattern)

        if kernel.num_threads == 0:
            # Empty launches still pay the overhead (the paper's small
            # levels launch plenty of nearly-empty kernels).
            start, _, duration = self._place(
                stream,
                warps_count=0,
                duration_fn=lambda g: self.spec.kernel_launch_overhead_s + mem_s,
            )
            self._commit(kernel, stream, start, start + duration, slots=0)
            return start + duration

        warps = warp_compute_times(kernel.thread_times, self.spec.warp_size)
        total_warp_s = float(warps.sum())
        longest_warp_s = float(warps.max())

        def duration_fn(grant: int) -> float:
            compute_s = max(total_warp_s / grant, longest_warp_s)
            child_s = 0.0
            if kernel.dynamic_children:
                # Device-side launches issue from the running warps in
                # parallel (the per-slot queue serialises them), and the
                # parent must wait for all children to drain before it
                # can retire (Alg. 5 line 9).
                child_s = (
                    kernel.dynamic_children
                    * self.spec.dynamic_launch_overhead_s
                    / grant
                    + self.spec.dynamic_sync_overhead_s
                )
            return self.spec.kernel_launch_overhead_s + compute_s + child_s + mem_s

        start, grant, duration = self._place(
            stream, warps_count=int(warps.size), duration_fn=duration_fn
        )
        end = start + duration

        self._commit(kernel, stream, start, end, slots=grant)
        self.metrics.warp_seconds_paid += total_warp_s
        self.metrics.thread_seconds_useful += float(kernel.thread_times.sum())
        self.metrics.dynamic_kernels_launched += kernel.dynamic_children
        self.metrics.mem_transactions += self.memory.transactions(
            kernel.mem_elements, kernel.mem_pattern
        )
        self.metrics.mem_bytes_moved += self.memory.bytes_moved(
            kernel.mem_elements, kernel.mem_pattern
        )
        self.metrics.mem_bytes_useful += kernel.mem_elements * self.memory.element_bytes
        return end

    def synchronize(self) -> float:
        """``cudaDeviceSynchronize``: wait for every outstanding kernel."""
        self._now = self.now
        self._active.clear()
        self._buf.clear()
        for stream in self._stream_ready:
            self._stream_ready[stream] = self._now
        self.metrics.elapsed_s = self._now
        self.metrics._slot_seconds_available = self._now * self.spec.warp_slots
        return self._now

    # -- placement internals ------------------------------------------------------

    def _place(self, stream: int, warps_count: int, duration_fn) -> tuple[float, int, float]:
        """Find ``(start, grant, duration)`` that never overcommits.

        Candidate start times are the stream-ready instant and every
        *overlapping* record's end (the only moments supply increases).
        At each candidate the grant shrinks until the slot supply covers
        the kernel's whole duration *and* the Hyper-Q cap holds across
        it; otherwise the next candidate is tried.  The time after every
        overlapping record ends is always feasible, so the search
        terminates.
        """
        ready = max(self._stream_ready.get(stream, 0.0), self._now)
        idx = self._buf.overlapping(ready)
        starts = self._buf.start[idx]
        ends = self._buf.end[idx]
        slots = self._buf.slots[idx]

        candidates = sorted({ready, *(float(e) for e in ends if e > ready)})
        for t in candidates:
            live = ends > t  # records that can still constrain [t, ...)
            grant = (
                min(warps_count, self._min_free(starts[live], ends[live], slots[live], t, t))
                if warps_count
                else 0
            )
            if warps_count and grant < 1:
                continue
            while True:
                duration = duration_fn(max(grant, 1))
                hi = t + duration
                if (
                    self._max_concurrent(starts[live], ends[live], t, hi)
                    >= self.spec.max_concurrent_kernels
                ):
                    break  # Hyper-Q full somewhere in the window
                if warps_count == 0:
                    return t, 0, duration
                available = self._min_free(
                    starts[live], ends[live], slots[live], t, hi
                )
                if available >= grant:
                    return t, grant, duration
                if available < 1:
                    break  # no supply inside the window; later candidate
                grant = available  # shrink and re-check (duration grows)
        raise SimulationError("no feasible start time found (internal error)")

    def _min_free(
        self,
        starts: np.ndarray,
        ends: np.ndarray,
        slots: np.ndarray,
        lo: float,
        hi: float,
    ) -> int:
        """Fewest free warp slots at any instant of ``[lo, hi]``.

        Supply only drops at record starts, so evaluating at ``lo`` and
        at every start inside the window is exact.
        """
        points = np.concatenate(
            [[lo], starts[(starts > lo) & (starts <= hi)]]
        )
        if points.size == 1:
            used = int(slots[(starts <= lo) & (lo < ends)].sum())
            return self.spec.warp_slots - used
        running = (starts[None, :] <= points[:, None]) & (points[:, None] < ends[None, :])
        used = running @ slots
        return int(self.spec.warp_slots - used.max())

    def _max_concurrent(
        self, starts: np.ndarray, ends: np.ndarray, lo: float, hi: float
    ) -> int:
        """Most kernels running at any instant of ``[lo, hi]``."""
        points = np.concatenate(
            [[lo], starts[(starts > lo) & (starts <= hi)]]
        )
        running = (starts[None, :] <= points[:, None]) & (points[:, None] < ends[None, :])
        return int(running.sum(axis=1).max()) if running.size else 0

    def _commit(
        self, kernel: KernelSpec, stream: int, start: float, end: float, slots: int
    ) -> None:
        """Record the placement and update stream/metric state."""
        if end < start:
            raise SimulationError(f"kernel {kernel.name!r} ends before it starts")
        if self.check_memory and kernel.mem_footprint_bytes:
            n = self._buf.n
            overlap = (self._buf.start[:n] < end) & (start < self._buf.end[:n])
            concurrent = int(self._buf.footprint[:n][overlap].sum())
            if concurrent + kernel.mem_footprint_bytes > self.spec.global_mem_bytes:
                raise SimulationError(
                    f"kernel {kernel.name!r} exceeds device memory: "
                    f"{concurrent + kernel.mem_footprint_bytes} B needed, "
                    f"{self.spec.global_mem_bytes} B available"
                )
        record = _Running(
            start=start, end=end, slots=slots, footprint=kernel.mem_footprint_bytes
        )
        self._active.append(record)
        self._buf.append(start, end, slots, kernel.mem_footprint_bytes)
        self._max_end = max(self._max_end, end)
        self._stream_ready[stream] = end
        self.metrics.kernels_launched += 1
        self.metrics.launch_overhead_s += self.spec.kernel_launch_overhead_s
        if self.check_memory or kernel.mem_footprint_bytes:
            n = self._buf.n
            overlap = (self._buf.start[:n] < end) & (start < self._buf.end[:n])
            running_footprint = int(self._buf.footprint[:n][overlap].sum())
            if running_footprint > self.metrics.peak_footprint_bytes:
                self.metrics.peak_footprint_bytes = running_footprint
