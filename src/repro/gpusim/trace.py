"""Execution tracing and ASCII timelines for the GPU simulator.

Attach a :class:`TraceRecorder` to a :class:`~repro.gpusim.engine.GpuSimulator`
and every kernel placement is recorded (name, stream, start, end, slot
grant).  :func:`render_timeline` draws the trace as a per-stream ASCII
Gantt chart — how the paper's Fig. 2 block-level schedule actually
plays out on the device, including the gaps (underutilisation) the
paper attributes small-table slowness to.

The recorder hooks the simulator non-invasively (wraps ``launch``), so
the engines need no changes and tracing costs nothing when unused.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError
from repro.gpusim.engine import GpuSimulator
from repro.gpusim.kernel import KernelSpec


@dataclass(frozen=True)
class TraceEvent:
    """One kernel execution interval."""

    name: str
    stream: int
    start: float
    end: float
    slots: int
    threads: int

    @property
    def duration(self) -> float:
        """Simulated seconds the kernel occupied the device."""
        return self.end - self.start


@dataclass
class TraceRecorder:
    """Records every launch of one simulator instance."""

    events: list[TraceEvent] = field(default_factory=list)

    def attach(self, sim: GpuSimulator) -> GpuSimulator:
        """Wrap ``sim.launch`` so subsequent launches are recorded."""
        original: Callable = sim.launch

        def traced_launch(kernel: KernelSpec, stream: int = 0) -> float:
            end = original(kernel, stream=stream)
            record = sim._active[-1]  # the placement just committed
            self.events.append(
                TraceEvent(
                    name=kernel.name,
                    stream=stream,
                    start=record.start,
                    end=record.end,
                    slots=record.slots,
                    threads=kernel.num_threads,
                )
            )
            return end

        sim.launch = traced_launch  # type: ignore[method-assign]
        return sim

    # -- summaries -----------------------------------------------------------

    @property
    def makespan(self) -> float:
        """End of the last recorded kernel."""
        return max((e.end for e in self.events), default=0.0)

    def stream_busy(self) -> dict[int, float]:
        """Total busy seconds per stream."""
        out: dict[int, float] = {}
        for e in self.events:
            out[e.stream] = out.get(e.stream, 0.0) + e.duration
        return out

    def gaps(self, stream: int) -> list[tuple[float, float]]:
        """Idle intervals between consecutive kernels of one stream."""
        events = sorted(
            (e for e in self.events if e.stream == stream), key=lambda e: e.start
        )
        out = []
        cursor = 0.0
        for e in events:
            if e.start > cursor + 1e-15:
                out.append((cursor, e.start))
            cursor = max(cursor, e.end)
        return out


def render_timeline(recorder: TraceRecorder, width: int = 72) -> str:
    """ASCII Gantt chart: one row per stream, '#' = busy, '.' = idle.

    Columns are uniform time buckets over ``[0, makespan]``; a bucket is
    busy if any of the stream's kernels overlaps it.
    """
    if width < 8:
        raise SimulationError(f"timeline width must be >= 8, got {width}")
    if not recorder.events:
        return "(no kernels recorded)"
    horizon = recorder.makespan
    streams = sorted({e.stream for e in recorder.events})
    lines = [f"timeline: 0 .. {horizon:.6g} simulated seconds, {width} buckets"]
    scale = horizon / width if horizon > 0 else 1.0
    for stream in streams:
        row = []
        events = [e for e in recorder.events if e.stream == stream]
        for b in range(width):
            lo, hi = b * scale, (b + 1) * scale
            busy = any(e.start < hi and e.end > lo for e in events)
            row.append("#" if busy else ".")
        busy_s = recorder.stream_busy()[stream]
        utilisation = busy_s / horizon if horizon > 0 else 0.0
        lines.append(f"stream {stream:>2} |{''.join(row)}| {utilisation:5.1%} busy")
    return "\n".join(lines)
