"""Global-memory access model: coalescing, transactions, transfer time.

§III-B of the paper attributes the naive port's slowness to *strided
access*: when a warp's 32 loads touch 32 different cache lines the bus
moves 32 full lines for 32 elements of payload ("the warp reads data
from the memory in a sequential manner").  After the Algorithm 4
reorganization a warp's loads are consecutive addresses — one or two
lines per warp access.

:func:`transactions_for_addresses` counts distinct lines exactly (used
in tests and for small access sets); :class:`AccessPattern` provides the
closed-form counts the engines use at scale, and :class:`MemoryModel`
converts transaction counts into simulated seconds under either the
bandwidth-bound (streaming) or latency-bound (random) regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence

import numpy as np

from repro.errors import SimulationError
from repro.gpusim.spec import DeviceSpec


def transactions_for_addresses(
    addresses: Sequence[int], element_bytes: int, line_bytes: int
) -> int:
    """Exact number of memory transactions for one warp's access set.

    ``addresses`` are element indices; a transaction is one distinct
    ``line_bytes``-aligned line touched by any byte of any element.
    """
    if element_bytes < 1 or line_bytes < 1:
        raise SimulationError("element_bytes and line_bytes must be >= 1")
    addr = np.asarray(addresses, dtype=np.int64)
    if addr.size == 0:
        return 0
    if (addr < 0).any():
        raise SimulationError("element addresses must be non-negative")
    first_line = (addr * element_bytes) // line_bytes
    last_line = (addr * element_bytes + element_bytes - 1) // line_bytes
    lines: set[int] = set()
    for lo, hi in zip(first_line.tolist(), last_line.tolist()):
        lines.update(range(lo, hi + 1))
    return len(lines)


class AccessPattern(Enum):
    """The two access regimes the engines distinguish.

    COALESCED: consecutive elements — ``ceil(n * elem / line)`` lines,
    full payload per line (post-reorganization block scans).
    STRIDED: every element on its own line — ``n`` lines, one element of
    payload each (row-major scans of a scattered block, the naive port).
    """

    COALESCED = "coalesced"
    STRIDED = "strided"


@dataclass(frozen=True)
class MemoryModel:
    """Transaction counting and timing for one device."""

    spec: DeviceSpec
    element_bytes: int = 8  # int64 DP cells

    def transactions(self, num_elements: int, pattern: AccessPattern) -> int:
        """Lines moved to read ``num_elements`` cells under ``pattern``."""
        if num_elements < 0:
            raise SimulationError(f"num_elements must be >= 0, got {num_elements}")
        if num_elements == 0:
            return 0
        line = self.spec.mem_line_bytes
        if pattern is AccessPattern.COALESCED:
            return -(-num_elements * self.element_bytes // line)
        return num_elements

    def bytes_moved(self, num_elements: int, pattern: AccessPattern) -> int:
        """Bus traffic in bytes (transactions × line size)."""
        return self.transactions(num_elements, pattern) * self.spec.mem_line_bytes

    def transfer_time(self, num_elements: int, pattern: AccessPattern) -> float:
        """Simulated seconds to move ``num_elements`` cells.

        Coalesced traffic streams at peak bandwidth; strided traffic is
        limited by the latency-bound random-access bandwidth (whichever
        regime is slower governs).
        """
        traffic = self.bytes_moved(num_elements, pattern)
        if pattern is AccessPattern.COALESCED:
            return traffic / self.spec.mem_bandwidth_bytes_per_s
        return traffic / self.spec.random_access_bandwidth()

    def effective_bus_utilization(self, num_elements: int, pattern: AccessPattern) -> float:
        """Useful payload / bytes moved — the paper's 'effective bandwidth'.

        1.0 for perfectly coalesced 128-byte loads; ``elem/line`` (1/16
        for int64) in the fully strided worst case of §III-B.
        """
        traffic = self.bytes_moved(num_elements, pattern)
        if traffic == 0:
            return 1.0
        return num_elements * self.element_bytes / traffic
