"""CPU specifications for the OpenMP cost model.

:data:`XEON_E5_2697V3_DUAL` mirrors the paper's baseline host (§IV-A:
"a dual processor system equipped with two Intel Xeon E5-2697v3", 14
cores each at 2.6 GHz).  The paper reports the OpenMP implementation at
16 and 28 threads (OMP16 / OMP28); the thread count is a parameter of
:class:`~repro.cpusim.openmp.OpenMPModel`, not of the spec.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class CpuSpec:
    """Static description of the multicore host.

    Attributes
    ----------
    name: human-readable label.
    total_cores: physical cores across all sockets.
    clock_hz: sustained core clock.
    mem_bandwidth_bytes_per_s: aggregate memory bandwidth shared by all
        threads — the ceiling for scan-dominated phases.
    fork_join_overhead_s: cost of opening+closing one ``parallel for``
        region (thread wake-up, implicit barrier).
    cycles_per_op: average cycles per abstract DP operation on one core
        (superscalar integer work on cached data).
    """

    name: str
    total_cores: int
    clock_hz: float
    mem_bandwidth_bytes_per_s: float = 280e9
    fork_join_overhead_s: float = 8e-6
    cycles_per_op: float = 1.0

    def __post_init__(self) -> None:
        if self.total_cores < 1:
            raise SimulationError("CPU must have at least one core")
        if self.clock_hz <= 0 or self.mem_bandwidth_bytes_per_s <= 0:
            raise SimulationError("clock and bandwidth must be positive")

    @property
    def op_time_s(self) -> float:
        """Simulated seconds per abstract operation on one core."""
        return self.cycles_per_op / self.clock_hz


#: The paper's dual-socket host (2 x 14 cores, 2.6 GHz).
XEON_E5_2697V3_DUAL = CpuSpec(
    name="2x Intel Xeon E5-2697 v3",
    total_cores=28,
    clock_hz=2.6e9,
)
