"""Fork-join ``parallel for`` cost model (OpenMP semantics).

One :meth:`OpenMPModel.parallel_for` call models one OpenMP worksharing
region: the items' compute costs are distributed over ``threads``
according to the chosen schedule, the region ends at the slowest
thread (implicit barrier), and a fork-join overhead is added.  A region
may also carry streamed memory traffic; the region cannot finish faster
than that traffic can move over the socket's shared bandwidth, which is
what makes scan-dominated DP levels scale sub-linearly in threads —
visible in the paper's modest OMP16→OMP28 gap.

Scheduling policies:

* ``static``  — contiguous chunks of ``ceil(n/threads)`` items
  (OpenMP's default ``schedule(static)``), cheap but imbalance-prone —
  exactly what [1] uses over each anti-diagonal.
* ``dynamic`` — greedy work stealing in chunks of ``chunk`` items,
  modelled by longest-processing-time-style list scheduling of chunks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.cpusim.spec import CpuSpec, XEON_E5_2697V3_DUAL
from repro.errors import SimulationError


@dataclass(frozen=True)
class ParallelForResult:
    """Timing breakdown of one worksharing region."""

    elapsed_s: float
    compute_s: float  # slowest thread's compute time
    memory_s: float  # bandwidth-imposed floor
    overhead_s: float  # fork + join
    imbalance: float  # slowest thread / average thread (>= 1)


class OpenMPModel:
    """Accumulating cost model for one OpenMP program run.

    ``elapsed_s`` sums every region executed so far; engines create one
    model per DP probe and read the total at the end.
    """

    def __init__(self, spec: CpuSpec = XEON_E5_2697V3_DUAL, threads: int = 28) -> None:
        if threads < 1:
            raise SimulationError(f"threads must be >= 1, got {threads}")
        if threads > 4 * spec.total_cores:
            raise SimulationError(
                f"{threads} threads heavily oversubscribes {spec.total_cores} cores"
            )
        self.spec = spec
        self.threads = threads
        self.elapsed_s = 0.0
        self.regions = 0

    # -- core ---------------------------------------------------------------

    def parallel_for(
        self,
        item_costs_s: np.ndarray,
        mem_bytes: int = 0,
        schedule: str = "static",
        chunk: int = 1,
    ) -> ParallelForResult:
        """Execute one worksharing region and accumulate its time.

        ``item_costs_s`` are per-item compute seconds on one core;
        ``mem_bytes`` is the region's total streamed traffic.
        """
        costs = np.asarray(item_costs_s, dtype=np.float64).ravel()
        if (costs < 0).any():
            raise SimulationError("item costs must be non-negative")
        if mem_bytes < 0:
            raise SimulationError("mem_bytes must be non-negative")

        if costs.size == 0:
            slowest = 0.0
            mean = 0.0
        elif self.threads == 1:
            slowest = float(costs.sum())
            mean = slowest
        elif schedule == "static":
            per_thread = self._static_loads(costs)
            slowest = float(per_thread.max())
            mean = float(per_thread.mean())
        elif schedule == "dynamic":
            per_thread = self._dynamic_loads(costs, chunk)
            slowest = float(per_thread.max())
            mean = float(per_thread.mean())
        else:
            raise SimulationError(f"unknown schedule {schedule!r}")

        memory_s = mem_bytes / self.spec.mem_bandwidth_bytes_per_s
        overhead_s = self.spec.fork_join_overhead_s
        elapsed = max(slowest, memory_s) + overhead_s

        self.elapsed_s += elapsed
        self.regions += 1
        return ParallelForResult(
            elapsed_s=elapsed,
            compute_s=slowest,
            memory_s=memory_s,
            overhead_s=overhead_s,
            imbalance=(slowest / mean) if mean > 0 else 1.0,
        )

    def serial(self, cost_s: float) -> None:
        """A serial section between regions (e.g. the bisection driver)."""
        if cost_s < 0:
            raise SimulationError("serial cost must be non-negative")
        self.elapsed_s += cost_s

    # -- schedules -------------------------------------------------------------

    def _static_loads(self, costs: np.ndarray) -> np.ndarray:
        """Per-thread totals under ``schedule(static)`` contiguous chunks."""
        n = costs.size
        chunk = -(-n // self.threads)
        loads = np.zeros(self.threads, dtype=np.float64)
        cumulative = np.concatenate([[0.0], np.cumsum(costs)])
        for t in range(self.threads):
            lo = min(t * chunk, n)
            hi = min(lo + chunk, n)
            loads[t] = cumulative[hi] - cumulative[lo]
        return loads

    def _dynamic_loads(self, costs: np.ndarray, chunk: int) -> np.ndarray:
        """Per-thread totals under greedy ``schedule(dynamic, chunk)``.

        Chunks are claimed in index order by whichever thread frees up
        first — a min-heap over thread completion times.
        """
        if chunk < 1:
            raise SimulationError(f"chunk must be >= 1, got {chunk}")
        n = costs.size
        heap = [(0.0, t) for t in range(self.threads)]
        heapq.heapify(heap)
        cumulative = np.concatenate([[0.0], np.cumsum(costs)])
        for lo in range(0, n, chunk):
            hi = min(lo + chunk, n)
            load, t = heapq.heappop(heap)
            heapq.heappush(heap, (load + float(cumulative[hi] - cumulative[lo]), t))
        loads = np.zeros(self.threads, dtype=np.float64)
        for load, t in heap:
            loads[t] = load
        return loads
