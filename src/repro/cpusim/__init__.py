"""OpenMP-style multicore CPU cost model (the paper's Xeon baseline, substituted).

Models the Ghalami–Grosu OpenMP implementation's execution structure: a
fork-join ``parallel for`` over each anti-diagonal level with static or
dynamic scheduling over ``P`` threads, plus a shared memory-bandwidth
ceiling for scan-heavy work.  See DESIGN.md §2 for the substitution
rationale.
"""

from repro.cpusim.spec import CpuSpec, XEON_E5_2697V3_DUAL
from repro.cpusim.openmp import OpenMPModel, ParallelForResult

__all__ = [
    "CpuSpec",
    "XEON_E5_2697V3_DUAL",
    "OpenMPModel",
    "ParallelForResult",
]
