"""Command-line interface: ``python -m repro <command>``.

Six commands:

* ``schedule`` — run the PTAS (and the classical baselines) on an
  instance given inline or generated at random;
* ``batch`` — run a fleet of random instances through the
  :class:`~repro.service.batch.BatchScheduler`, with the resilience
  knobs (fault injection, memory budget, retries, deadlines) exposed;
* ``serve`` — start the always-on asyncio
  :class:`~repro.service.daemon.SchedulingService` and drive it with a
  reproducible open-loop Poisson workload (``docs/SERVICE.md``),
  printing latency percentiles, the coalescing hit rate, and the live
  introspection snapshot;
* ``engines`` — fill one DP probe on every simulated engine and print
  the simulated-time comparison (a miniature Fig. 3 row);
* ``experiment`` — regenerate a paper exhibit at reduced scale and
  print its report (the benchmarks run the full versions);
* ``health`` — fill-fabric hygiene: sweep orphaned ``/dev/shm``
  segments left by crashed runs, report the pinned start method, and
  (``--self-test``) run a real supervised parallel fill and check it
  against the single-process reference (``docs/RELIABILITY.md``).

Exit codes (``docs/RELIABILITY.md``): 0 success, 2 usage error
(bad flags, unknown backend), 3 invalid instance, 4 backend failure,
5 memory budget exceeded, 6 the run succeeded but served at least one
degraded (baseline) result, 7 the service shutdown drain timed out
with requests still in flight.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.report import render_table
from repro.core.baselines import lpt_schedule, multifit_schedule
from repro.core.instance import Instance, uniform_instance
from repro.core.ptas import ptas_schedule
from repro.core.rounding import round_instance

#: Process exit codes — one per failure class, so scripts and CI can
#: react without parsing stderr.
EXIT_OK = 0
EXIT_USAGE = 2
EXIT_INVALID_INSTANCE = 3
EXIT_BACKEND_FAILURE = 4
EXIT_BUDGET = 5
EXIT_DEGRADED = 6
EXIT_SHUTDOWN_TIMEOUT = 7

_SIZE_SUFFIXES = {
    "k": 10**3, "m": 10**6, "g": 10**9,
    "kb": 10**3, "mb": 10**6, "gb": 10**9,
    "kib": 2**10, "mib": 2**20, "gib": 2**30,
}


def parse_bytes(spec: str) -> int:
    """Parse a byte budget like ``"64MiB"``, ``"2gb"``, or ``"4096"``."""
    text = spec.strip().lower()
    for suffix in sorted(_SIZE_SUFFIXES, key=len, reverse=True):
        if text.endswith(suffix):
            number = text[: -len(suffix)].strip()
            try:
                return int(float(number) * _SIZE_SUFFIXES[suffix])
            except ValueError:
                break
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"cannot parse byte size {spec!r}; use e.g. 4096, 64KiB, 16MB, 2GiB"
        ) from None


def _add_resilience_flags(parser: argparse.ArgumentParser) -> None:
    """The shared resilience knobs (see docs/RELIABILITY.md)."""
    parser.add_argument(
        "--inject-faults", metavar="SPEC", default=None,
        help="deterministic chaos: comma-separated key=value pairs, e.g. "
             "'seed=7,rate=0.5,kinds=dperror|crash,sites=dp,max=1'",
    )
    parser.add_argument(
        "--memory-budget", type=parse_bytes, default=None, metavar="BYTES",
        help="per-probe admission budget (e.g. 64MiB); probes whose "
             "estimated DP table exceeds it are rejected before any "
             "allocation",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retry transient probe failures up to N attempts total",
    )
    parser.add_argument(
        "--probe-deadline", type=float, default=None, metavar="SECONDS",
        help="per-probe wall-clock deadline; probes over it raise "
             "ProbeTimeoutError (retried as transient)",
    )
    parser.add_argument(
        "--fill-workers", type=int, default=None, metavar="P",
        help="run large DP fills process-parallel on a P-worker "
             "shared-memory fill fabric (fabric-aware backends only); "
             "admission estimates automatically cover the fabric's "
             "segments and per-worker scratch",
    )
    parser.add_argument(
        "--fill-min-cells", type=int, default=None, metavar="CELLS",
        help="fabric dispatch threshold: waves smaller than CELLS run "
             "inline in the parent (default 256).  The chaos CI smoke "
             "sets 1 so every wave crosses the process boundary",
    )
    parser.add_argument(
        "--no-sparsify", action="store_true",
        help="disable configuration sparsification (dominance pruning) "
             "and probe-cache warm starts on sparsify-aware backends; "
             "the escape hatch that replays every DP fill dense and "
             "cold, bit-identical to the pre-sparsify library "
             "(docs/PERFORMANCE.md)",
    )


def _add_model_flags(parser: argparse.ArgumentParser) -> None:
    """The machine-model selectors (see docs/MODELS.md)."""
    from repro.core.instance import KNOWN_MODELS

    parser.add_argument(
        "--model", choices=list(KNOWN_MODELS), default="identical",
        help="machine model to schedule under: 'identical' (default), "
             "'unrelated-few-types' (a few machine types with integer "
             "speeds), or 'time-restricted' (a per-machine job-count "
             "cap)",
    )
    parser.add_argument(
        "--type-speeds", type=int, nargs="+", default=None, metavar="S",
        help="unrelated-few-types: integer speed per machine type "
             "(default: one unit-speed type)",
    )
    parser.add_argument(
        "--machines-per-type", type=int, nargs="+", default=None, metavar="M",
        help="unrelated-few-types: machine count per type, aligned with "
             "--type-speeds and summing to --machines",
    )
    parser.add_argument(
        "--max-jobs-per-machine", type=int, default=None, metavar="B",
        help="time-restricted: at most B jobs per machine "
             "(default: the job count, i.e. non-binding)",
    )


def _modelled(inst: Instance, args: argparse.Namespace) -> Instance:
    """Apply the ``--model`` flags to a constructed instance."""
    from repro.models import with_model

    return with_model(
        inst,
        args.model,
        type_speeds=args.type_speeds,
        machines_per_type=args.machines_per_type,
        max_jobs_per_machine=args.max_jobs_per_machine,
    )


def _resilience_from_args(args: argparse.Namespace):
    """Build (policy, injector) from the shared flags; (None, None) if unset."""
    from repro.resilience import (
        AdmissionController,
        FaultInjector,
        ResiliencePolicy,
        RetryPolicy,
    )

    faults = (
        FaultInjector.from_spec(args.inject_faults)
        if args.inject_faults
        else None
    )
    retry = RetryPolicy(max_attempts=args.retries) if args.retries else None
    if faults is not None and retry is None:
        retry = RetryPolicy()
    admission = (
        AdmissionController(
            args.memory_budget,
            fill_workers=getattr(args, "fill_workers", None),
        )
        if args.memory_budget is not None
        else None
    )
    if (
        faults is None
        and retry is None
        and args.probe_deadline is None
        and admission is None
    ):
        return None, None
    policy = ResiliencePolicy(
        faults=faults,
        retry=retry,
        deadline_s=args.probe_deadline,
        admission=admission,
    )
    return policy, faults


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GPU-style parallel PTAS for P||Cmax (IPDPS-W 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sched = sub.add_parser("schedule", help="schedule an instance with the PTAS")
    p_sched.add_argument(
        "--times", type=int, nargs="+", help="job processing times (integers)"
    )
    p_sched.add_argument("--machines", type=int, help="required unless --from-file")
    p_sched.add_argument(
        "--random", type=int, metavar="N", help="generate N uniform random jobs"
    )
    p_sched.add_argument("--low", type=int, default=1)
    p_sched.add_argument("--high", type=int, default=100)
    p_sched.add_argument("--seed", type=int, default=None)
    p_sched.add_argument("--eps", type=float, default=0.3)
    p_sched.add_argument(
        "--search", choices=["bisection", "quarter"], default="quarter"
    )
    p_sched.add_argument(
        "--backend", default="vectorized", metavar="NAME",
        help="DP solver backend from the registry (repro.backends): "
             "'vectorized' (default), 'auto' (cost-model kernel "
             "selection per probe), 'decision', 'sweep', 'frontier', "
             "'reference', or a simulated engine such as 'serial', "
             "'omp-28', 'gpu-dim6', 'hybrid'",
    )
    p_sched.add_argument(
        "--parallel-probes", type=int, default=None, metavar="N",
        help="run each search round's probes on N host threads (real "
             "concurrency; pairs naturally with --search quarter, whose "
             "rounds probe four targets).  Ignored for simulated "
             "engines, whose concurrency is modelled instead",
    )
    p_sched.add_argument(
        "--baselines", action="store_true", help="also run LPT and MULTIFIT"
    )
    p_sched.add_argument(
        "--from-file", metavar="PATH",
        help="read the instance from a repro.core.io text file",
    )
    p_sched.add_argument(
        "--save-schedule", metavar="PATH",
        help="write the resulting schedule to a text file",
    )
    p_sched.add_argument(
        "--profile", action="store_true",
        help="print per-phase timings and counters after the run "
             "(see docs/PERFORMANCE.md for how to read them)",
    )
    p_sched.add_argument(
        "--trace-json", metavar="PATH",
        help="write one JSON record per DP probe (targets, timings, "
             "cache hits) to PATH",
    )
    p_sched.add_argument(
        "--cache", action="store_true",
        help="enable the cross-probe solver cache (identical results, "
             "fewer enumerations/DP fills; stats printed with --profile)",
    )
    _add_model_flags(p_sched)
    _add_resilience_flags(p_sched)

    p_batch = sub.add_parser(
        "batch",
        help="schedule a fleet of random instances via the batch service",
    )
    p_batch.add_argument(
        "--requests", type=int, default=4, metavar="N",
        help="number of random instances in the fleet",
    )
    p_batch.add_argument("--jobs", type=int, default=20)
    p_batch.add_argument("--machines", type=int, default=4)
    p_batch.add_argument("--low", type=int, default=1)
    p_batch.add_argument("--high", type=int, default=100)
    p_batch.add_argument("--seed", type=int, default=0)
    p_batch.add_argument("--eps", type=float, default=0.3)
    p_batch.add_argument(
        "--backend", default="auto", metavar="NAME",
        help="registry backend for every request; 'fallback' or "
             "'fallback:<a>,<b>,...' enables backend step-down chains",
    )
    p_batch.add_argument("--workers", type=int, default=4)
    p_batch.add_argument(
        "--no-degrade", action="store_true",
        help="abort the batch on the first hard failure instead of "
             "serving a bounded LPT/MULTIFIT answer for that request",
    )
    _add_model_flags(p_batch)
    _add_resilience_flags(p_batch)

    p_serve = sub.add_parser(
        "serve",
        help="run the always-on scheduling service under an open-loop "
             "Poisson workload (docs/SERVICE.md)",
    )
    p_serve.add_argument(
        "--requests", type=int, default=32, metavar="N",
        help="number of requests in the generated workload",
    )
    p_serve.add_argument(
        "--arrival-rate", type=float, default=50.0, metavar="HZ",
        help="open-loop Poisson arrival rate (requests per second)",
    )
    p_serve.add_argument(
        "--duplicate-fraction", type=float, default=0.3, metavar="F",
        help="fraction of arrivals that re-submit an earlier instance "
             "(the coalescing pressure)",
    )
    p_serve.add_argument("--jobs", type=int, default=20)
    p_serve.add_argument("--machines", type=int, default=4)
    p_serve.add_argument("--low", type=int, default=1)
    p_serve.add_argument("--high", type=int, default=100)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--eps", type=float, default=0.3)
    p_serve.add_argument(
        "--backend", default="auto", metavar="NAME",
        help="registry backend for every request (as for 'batch')",
    )
    p_serve.add_argument(
        "--workers", type=int, default=4,
        help="concurrent pipeline executions inside the daemon",
    )
    p_serve.add_argument(
        "--quota", type=int, default=None, metavar="N",
        help="per-tenant in-flight admission quota (default: unlimited)",
    )
    p_serve.add_argument(
        "--time-scale", type=float, default=1.0, metavar="S",
        help="multiply every arrival offset by S (e.g. 0.1 compresses "
             "a long trace into a smoke test)",
    )
    p_serve.add_argument(
        "--drain-timeout", type=float, default=None, metavar="SECONDS",
        help="cap the shutdown drain; on expiry in-flight work is "
             "abandoned and the process exits 7",
    )
    p_serve.add_argument(
        "--stats-json", metavar="PATH",
        help="write the final introspection snapshot (service stats, "
             "latency percentiles, cache tallies) to PATH as JSON",
    )
    _add_model_flags(p_serve)
    _add_resilience_flags(p_serve)

    p_eng = sub.add_parser(
        "engines", help="compare simulated engines on one DP probe"
    )
    p_eng.add_argument("--jobs", type=int, default=40)
    p_eng.add_argument("--machines", type=int, default=6)
    p_eng.add_argument("--target", type=int, default=None, help="makespan target T")
    p_eng.add_argument("--seed", type=int, default=7)
    p_eng.add_argument("--eps", type=float, default=0.3)
    p_eng.add_argument(
        "--dims", type=int, nargs="+", default=[3, 6, 9],
        help="GPU partition settings to include",
    )

    p_exp = sub.add_parser("experiment", help="regenerate a paper exhibit (reduced)")
    p_exp.add_argument(
        "exhibit",
        choices=["fig1", "fig2", "fig3", "fig4", "tables", "table7", "ablations", "census"],
    )

    p_health = sub.add_parser(
        "health",
        help="fill-fabric hygiene: reap orphaned shared-memory segments "
             "and optionally self-test the supervised parallel fill",
    )
    p_health.add_argument(
        "--no-reap", action="store_true",
        help="report without sweeping orphaned /dev/shm fabric segments",
    )
    p_health.add_argument(
        "--self-test", action="store_true",
        help="run a real process-parallel DP fill on a 2-worker fabric "
             "and verify it bit-identical to the single-process "
             "reference (includes the table-integrity pass)",
    )
    p_health.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the health payload (start method, reaped segments, "
             "self-test snapshot) to PATH as JSON",
    )
    return parser


def _cmd_schedule(args: argparse.Namespace) -> int:
    from repro.errors import InvalidInstanceError

    if not args.from_file and args.machines is None:
        print("error: --machines is required unless --from-file", file=sys.stderr)
        return EXIT_USAGE
    try:
        if args.from_file:
            from repro.core.io import load_instance

            inst = load_instance(args.from_file)
        elif args.random is not None:
            inst = uniform_instance(
                args.random, args.machines,
                low=args.low, high=args.high, seed=args.seed,
            )
        elif args.times:
            inst = Instance(times=tuple(args.times), machines=args.machines)
        else:
            print(
                "error: provide --times, --random N, or --from-file",
                file=sys.stderr,
            )
            return EXIT_USAGE
        inst = _modelled(inst, args)
    except InvalidInstanceError as exc:
        print(f"error: invalid instance: {exc}", file=sys.stderr)
        return EXIT_INVALID_INSTANCE

    from repro.backends import get_spec, resolve
    from repro.core.executor import ParallelHostExecutor, default_executor
    from repro.errors import (
        BackendError,
        MemoryBudgetExceeded,
        ReproError,
    )

    try:
        resilience, faults = _resilience_from_args(args)
    except InvalidInstanceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    fill_fabric = None
    try:
        spec = get_spec(args.backend)
        if spec.decision_only:
            raise BackendError(
                f"backend {spec.name!r} is decision-only: it answers the "
                "feasibility predicate without a backtrackable table, so "
                "'schedule' cannot extract a schedule from it — use a "
                "table-producing backend such as 'auto' or 'vectorized'"
            )
        resolve_kwargs = {}
        if args.fill_workers is not None and args.fill_workers < 1:
            raise BackendError(
                f"--fill-workers must be >= 1, got {args.fill_workers}"
            )
        if (
            args.fill_workers is not None
            and args.fill_workers > 1
            and spec.fabric_aware
        ):
            from repro.parallel.fabric import BlockExecutor

            # The fabric shares the chaos injector so its
            # "fabric.worker" site can SIGKILL real pool workers.
            fabric_kwargs = {}
            if args.fill_min_cells is not None:
                fabric_kwargs["min_parallel_cells"] = args.fill_min_cells
            fill_fabric = BlockExecutor(
                workers=args.fill_workers, faults=faults, **fabric_kwargs
            )
            resolve_kwargs["fill_fabric"] = fill_fabric
        if args.no_sparsify and spec.sparsify_aware:
            resolve_kwargs["sparsify"] = False
        solver = resolve(args.backend, **resolve_kwargs)
    except BackendError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    cache = tracer = None
    if args.cache:
        from repro.core.probe_cache import ProbeCache

        # --no-sparsify promises the dense cold replay, so the cache
        # must not seed warm tables either.
        cache = ProbeCache(warm_start=not args.no_sparsify)
    if args.profile or args.trace_json:
        from repro.observability import Tracer

        tracer = Tracer()

    if args.parallel_probes and not spec.simulated:
        executor = ParallelHostExecutor(
            workers=args.parallel_probes, resilience=resilience,
            fill_workers=args.fill_workers,
        )
    else:
        executor = default_executor(solver, resilience=resilience)
    try:
        result = ptas_schedule(
            inst, eps=args.eps, search=args.search, dp_solver=solver,
            cache=cache, trace=tracer, executor=executor,
        )
    except MemoryBudgetExceeded as exc:
        print(f"error: memory budget exceeded: {exc}", file=sys.stderr)
        return EXIT_BUDGET
    except (ReproError, MemoryError) as exc:
        print(
            f"error: backend failure: {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        return EXIT_BACKEND_FAILURE
    finally:
        # The fabric's worker pool and shared segments must not outlive
        # the command — leaked segments would trip the resource tracker
        # at interpreter exit.
        if fill_fabric is not None:
            fill_fabric.close()
    print(f"instance: {inst}")
    print(
        f"PTAS(eps={args.eps}, {args.search}): makespan {result.makespan} "
        f"(proven <= {result.guarantee_bound():.1f}, "
        f"{result.iterations} iterations, {len(result.probes)} DP probes)"
    )
    print(f"loads: {result.schedule.loads().tolist()}")
    if inst.model != "identical":
        print(f"completions: {result.schedule.completion_times().tolist()}")
    if spec.simulated:
        print(
            f"backend {spec.name}: simulated {executor.elapsed_s * 1e3:.3f} ms "
            f"({executor.rounds} rounds, {spec.concurrency} concurrency)"
        )
    if tracer is not None and args.profile:
        from repro.observability import render_profile

        print(render_profile(tracer, title=f"profile ({args.search})"))
        if cache is not None:
            print(f"cache: {cache.stats}")
    if tracer is not None and args.trace_json:
        import json

        try:
            with open(args.trace_json, "w") as fh:
                json.dump(tracer.report(), fh, indent=2)
        except OSError as exc:
            print(f"error: cannot write trace file: {exc}", file=sys.stderr)
            return 2
        print(f"trace written to {args.trace_json}")
    if args.save_schedule:
        from repro.core.io import save_schedule

        save_schedule(result.schedule, args.save_schedule)
        print(f"schedule written to {args.save_schedule}")
    if args.baselines:
        if inst.model == "identical":
            print(f"LPT:      makespan {lpt_schedule(inst).makespan}")
            print(f"MULTIFIT: makespan {multifit_schedule(inst).makespan}")
        else:
            # LPT/MULTIFIT placement (and their ratios) assume identical
            # machines; serve the model's own baseline instead.
            from repro.core.baselines import best_baseline

            sched, by, bound = best_baseline(inst)
            print(
                f"{by}: makespan {sched.makespan} "
                f"(a-posteriori <= {bound:.3f} * OPT)"
            )
    return EXIT_OK


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.errors import (
        BackendError,
        InvalidInstanceError,
        MemoryBudgetExceeded,
        ReproError,
    )
    from repro.resilience import FaultInjector, RetryPolicy
    from repro.service.batch import BatchScheduler

    if args.requests < 1:
        print("error: --requests must be >= 1", file=sys.stderr)
        return EXIT_USAGE
    try:
        instances = [
            _modelled(
                uniform_instance(
                    args.jobs, args.machines,
                    low=args.low, high=args.high, seed=args.seed + i,
                ),
                args,
            )
            for i in range(args.requests)
        ]
    except InvalidInstanceError as exc:
        print(f"error: invalid instance: {exc}", file=sys.stderr)
        return EXIT_INVALID_INSTANCE

    try:
        faults = (
            FaultInjector.from_spec(args.inject_faults)
            if args.inject_faults
            else None
        )
        retry = RetryPolicy(max_attempts=args.retries) if args.retries else None
        scheduler = BatchScheduler(
            backend=args.backend,
            workers=args.workers,
            eps=args.eps,
            faults=faults,
            retry=retry,
            deadline_s=args.probe_deadline,
            memory_budget_bytes=args.memory_budget,
            degrade=not args.no_degrade,
            fill_workers=args.fill_workers,
            fill_min_cells=args.fill_min_cells,
            sparsify=False if args.no_sparsify else None,
        )
    except (BackendError, InvalidInstanceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    try:
        with scheduler:
            report = scheduler.run(instances)
    except MemoryBudgetExceeded as exc:
        print(f"error: memory budget exceeded: {exc}", file=sys.stderr)
        return EXIT_BUDGET
    except (ReproError, MemoryError) as exc:
        print(
            f"error: backend failure: {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        return EXIT_BACKEND_FAILURE

    for r in report.results:
        if r.degraded:
            print(
                f"{r.name}: makespan {r.makespan} DEGRADED "
                f"(served by {r.degraded_by}, proven <= "
                f"{r.degraded_bound:.4f} * OPT) — {r.error}"
            )
        else:
            print(
                f"{r.name}: makespan {r.makespan} "
                f"({r.result.iterations} iterations, "
                f"{len(r.result.probes)} probes)"
            )
    print(
        f"batch: {len(report.results)} requests, "
        f"{report.degraded_count} degraded, "
        f"{report.total_probes} probes, backend {report.backend}"
    )
    if faults is not None and faults.events:
        print(f"faults injected: {len(faults.events)}")
    fabric = report.fabric or {}
    recovery = {
        k: fabric[k]
        for k in (
            "pool_restarts",
            "waves_reexecuted",
            "workers_killed",
            "inline_fallbacks",
            "segments_reaped",
        )
        if k in fabric
    }
    if recovery:
        print(
            "fabric recovery: "
            + ", ".join(f"{k}={v}" for k, v in recovery.items())
        )
    return EXIT_DEGRADED if report.degraded_count else EXIT_OK


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.errors import BackendError, InvalidInstanceError
    from repro.resilience import FaultInjector, RetryPolicy, TenantQuota
    from repro.service import LoadProfile, SchedulingService, run_load

    try:
        profile = LoadProfile(
            requests=args.requests,
            arrival_rate_hz=args.arrival_rate,
            jobs=args.jobs,
            machines=args.machines,
            low=args.low,
            high=args.high,
            eps=args.eps,
            seed=args.seed,
            duplicate_fraction=args.duplicate_fraction,
            model=args.model,
            type_speeds=(
                tuple(args.type_speeds) if args.type_speeds else None
            ),
            machines_per_type=(
                tuple(args.machines_per_type)
                if args.machines_per_type
                else None
            ),
            max_jobs_per_machine=args.max_jobs_per_machine,
        )
        faults = (
            FaultInjector.from_spec(args.inject_faults)
            if args.inject_faults
            else None
        )
        retry = RetryPolicy(max_attempts=args.retries) if args.retries else None
        quota = TenantQuota(args.quota) if args.quota is not None else None
        service = SchedulingService(
            backend=args.backend,
            workers=args.workers,
            eps=args.eps,
            quota=quota,
            faults=faults,
            retry=retry,
            deadline_s=args.probe_deadline,
            memory_budget_bytes=args.memory_budget,
            fill_workers=args.fill_workers,
            fill_min_cells=args.fill_min_cells,
            sparsify=False if args.no_sparsify else None,
        )
    except (BackendError, InvalidInstanceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    async def _run():
        await service.start()
        try:
            report = await run_load(service, profile, time_scale=args.time_scale)
        finally:
            clean = await service.shutdown(timeout_s=args.drain_timeout)
        return report, clean

    report, clean = asyncio.run(_run())

    latency = report.stats.get("latency", {})
    print(
        f"serve: {report.submitted} requests, "
        f"{report.coalesced} coalesced "
        f"(hit rate {report.coalescing_hit_rate:.2f}), "
        f"{report.degraded} degraded, "
        f"{report.bound_first_violations} bound-first violations, "
        f"{report.wall_s:.2f}s wall"
    )
    for stage in ("bound", "refined"):
        summary = latency.get(stage)
        if summary and summary.get("count"):
            print(
                f"{stage:>8}: p50 {summary['p50_ms']:.2f} ms, "
                f"p95 {summary['p95_ms']:.2f} ms, "
                f"p99 {summary['p99_ms']:.2f} ms "
                f"({summary['count']} samples)"
            )
    if not clean:
        print(
            "error: shutdown drain timed out with requests in flight",
            file=sys.stderr,
        )
    if args.stats_json:
        import json

        try:
            with open(args.stats_json, "w") as fh:
                json.dump(report.as_dict(), fh, indent=2)
        except OSError as exc:
            print(f"error: cannot write stats file: {exc}", file=sys.stderr)
            return EXIT_USAGE
        print(f"stats written to {args.stats_json}")
    if not clean:
        return EXIT_SHUTDOWN_TIMEOUT
    return EXIT_DEGRADED if report.degraded else EXIT_OK


def _cmd_engines(args: argparse.Namespace) -> int:
    from repro.backends import iter_backends, resolve
    from repro.core.bounds import makespan_bounds
    from repro.core.probe_cache import PlanCache

    inst = uniform_instance(args.jobs, args.machines, low=5, high=100, seed=args.seed)
    bounds = makespan_bounds(inst)
    # Default near the lower bound: that is where the bisection spends
    # its time and where tables are big enough to be interesting.
    target = args.target or bounds.lower + max(1, bounds.width // 8)
    rounded = round_instance(inst, target, args.eps)
    if rounded.dims == 0:
        print("all jobs are short at this target; nothing for the DP to do")
        return 0
    print(
        f"probe: T={target}, table shape {rounded.table_shape} "
        f"({rounded.table_size} cells, {rounded.dims} dims)"
    )

    # Every simulated backend in the registry; the gpu-dim family is
    # expanded from --dims rather than the registry's curated sizes.
    names = [
        s.name
        for s in iter_backends(simulated=True)
        if not s.name.startswith("gpu-dim")
    ]
    names += [f"gpu-dim{d}" for d in args.dims]
    # One plan cache for the whole comparison: every engine interprets
    # the same ProbePlan, so the wavefront/partition derivation happens
    # once here (the per-dim blocked schedules are memoized on it too).
    plans = PlanCache()
    rows = []
    opt = None
    for name in names:
        kwargs = {"check_memory": False} if name.startswith("gpu") else {}
        engine = resolve(name, plan_cache=plans, **kwargs)
        run = engine.run(rounded.counts, rounded.class_sizes, rounded.target)
        opt = run.dp_result.opt if opt is None else opt
        assert run.dp_result.opt == opt, "engines disagree!"
        # Label rows with the registry name: the hybrid engine tags its
        # runs with whichever device it dispatched to.
        rows.append({"engine": name, "simulated_s": run.simulated_s})
    print(render_table(rows))
    print(f"OPT(N) = {opt} machines (identical across engines)")
    print(
        f"plan cache: {plans.stats.hits.get('plan', 0)} hits / "
        f"{plans.stats.misses.get('plan', 0)} misses across {len(names)} engines "
        f"(one shared probe plan)"
    )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import (
        ablations, census, fig1, fig2, fig3, fig4, table7, tables_i_vi,
    )

    if args.exhibit == "fig1":
        result = fig1.run()
        print(render_table(result.rows, title=result.description))
    elif args.exhibit == "fig2":
        result = fig2.run()
        print(render_table(result.rows, title=result.description))
    elif args.exhibit == "fig3":
        result = fig3.run(
            groups=[(100, 10_000), (20_000, 100_000)], per_group=3, dims=(3, 6)
        )
        print(render_table(result.rows, title=result.description))
        print(f"crossover: {fig3.crossover_size(result)}")
    elif args.exhibit == "fig4":
        result = fig4.run(sizes=(3456,))
        keep = ["table_size", "n_dims", "partition_dim", "simulated_s"]
        print(render_table([{k: r[k] for k in keep} for r in result.rows],
                           title=result.description))
    elif args.exhibit == "tables":
        result = tables_i_vi.run()
        print(render_table(result.rows, title=result.description))
    elif args.exhibit == "table7":
        result = table7.run(sizes=(12960, 20736))
        print(render_table(result.rows, title=result.description))
    elif args.exhibit == "census":
        result = census.run(population=10)
        print(render_table(result.rows, title=result.description))
    else:
        for fn in (ablations.naive_port, ablations.stream_count, ablations.coalescing):
            result = fn()
            print(render_table(result.rows, title=result.description))
            print()
    for note in getattr(result, "notes", []):
        print(note)
    return 0


def _cmd_health(args: argparse.Namespace) -> int:
    from repro.parallel.fabric import (
        BlockExecutor,
        fabric_start_method,
        reap_orphans,
    )

    payload: dict = {"start_method": fabric_start_method()}
    print(f"start method: {payload['start_method']}")
    if args.no_reap:
        payload["reaped_segments"] = []
        print("orphan reaper: skipped (--no-reap)")
    else:
        reaped = reap_orphans()
        payload["reaped_segments"] = list(reaped)
        print(f"orphan reaper: {len(reaped)} segment(s) reclaimed")
        for name in reaped:
            print(f"  reaped {name}")

    code = EXIT_OK
    if args.self_test:
        import numpy as np

        from repro.dptable.plan import build_probe_plan
        from repro.errors import ReproError

        try:
            # Big enough that every wave actually dispatches to the
            # pool (min_parallel_cells=1), small enough to stay a
            # sub-second smoke even on one core.
            plan = build_probe_plan((6, 5, 4), (3, 5, 7), 30)
            with BlockExecutor(workers=2) as fabric:
                got = fabric.fill(plan, min_parallel_cells=1)
                snapshot = fabric.health().as_dict()
            with BlockExecutor(workers=1) as reference:
                ref = reference.fill(plan)
            identical = bool(np.array_equal(ref, got))
        except (ReproError, OSError) as exc:
            print(
                f"error: self-test failed: {type(exc).__name__}: {exc}",
                file=sys.stderr,
            )
            payload["self_test"] = {
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
            }
            code = EXIT_BACKEND_FAILURE
        else:
            payload["self_test"] = {"ok": identical, **snapshot}
            checked = snapshot.get("integrity_cells_checked", 0)
            if identical:
                print(
                    f"self-test: parallel fill bit-identical to the "
                    f"reference ({checked} cells integrity-checked, "
                    f"pool generation {snapshot['generation']})"
                )
            else:
                print(
                    "error: self-test fill DIVERGED from the "
                    "single-process reference",
                    file=sys.stderr,
                )
                code = EXIT_BACKEND_FAILURE

    if args.json:
        import json

        try:
            with open(args.json, "w") as fh:
                json.dump(payload, fh, indent=2)
        except OSError as exc:
            print(f"error: cannot write health file: {exc}", file=sys.stderr)
            return EXIT_USAGE
        print(f"health written to {args.json}")
    return code


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "schedule":
        return _cmd_schedule(args)
    if args.command == "batch":
        return _cmd_batch(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "engines":
        return _cmd_engines(args)
    if args.command == "health":
        return _cmd_health(args)
    return _cmd_experiment(args)


if __name__ == "__main__":
    raise SystemExit(main())
