"""The shared-memory fill fabric: process-parallel plan execution.

This module generalises the SharedMemory machinery that used to live
privately in :mod:`repro.parallel.wavefront` into a layer **any**
plan-aware engine can use:

* :class:`SharedTableArena` — one context-managed shared segment
  holding a narrow-dtype DP table (dtype from
  :func:`repro.core.dp_common.pick_table_dtype`), closed *and*
  unlinked on block exit no matter what — a raised
  :class:`~repro.errors.DPError` must not leak segments.  Its
  :meth:`~SharedTableArena.verify` pass detects torn or impossible
  values before a fill's table is widened and returned.

* :class:`BlockExecutor` — a persistent, *supervised* process pool
  that dispatches a plan's anti-diagonal waves (the level schedule of
  Algorithm 2, or the blocked ``(block-level, in-block-level)`` groups
  of Algorithms 4+5) over the arena.  Each plan's wave order and
  configuration set are written to a shared segment **once** and
  attached lazily **once per worker**, keyed on a digest of the exact
  plan signature (:func:`repro.dptable.plan.configs_signature`), so
  repeated probes over the same plan reuse the mapping zero-copy.

* :class:`HostParallelSolver` — the ``hostpar-<p>`` registry backend:
  a thin :class:`~repro.core.ptas.DPSolver` client of the fabric.

**Start method.**  The fabric pins its multiprocessing start method
explicitly instead of inheriting the platform default: ``forkserver``
(with this module preloaded) where available, ``spawn`` otherwise —
never ``fork``.  A forked child inherits the parent's locks, arbitrary
thread state, and any half-poisoned allocator pages, which is exactly
the state a crash-recovery layer cannot reason about; a forkserver /
spawn child starts from a clean interpreter, so a respawned pool after
a worker death is a genuinely fresh one.  The preload keeps post-crash
respawns cheap: the server process imports numpy and this module once.

**Supervision.**  Waves are dispatched asynchronously onto a
:class:`concurrent.futures.ProcessPoolExecutor` under a per-wave
deadline.  The historical ``multiprocessing.Pool.map`` had *no* answer
to a real worker death: a lost task blocks the map forever, and a
worker SIGKILLed while idle dies holding the task-queue read lock, so
even ``terminate()`` deadlocks (``_help_stuff_finish`` acquires that
lock — observed in anger while building this).  The futures executor
is built for exactly this failure: a dead worker marks the pool broken
and fails every pending future with ``BrokenProcessPool`` immediately,
and shutdown stays safe.  A lost wave tears the pool down, respawns
it, and re-executes **only that wave**: cells of one wave are disjoint
and depend only on earlier waves, so re-execution overwrites any
partial writes with identical values (the paper's wavefront safety
argument doubles as a recovery idempotency proof — bit-identity is
property-tested).  The recovery budget is capped per fill
(``max_pool_restarts``); past it the fill degrades to inline
single-process execution (``inline_fallback``) or surfaces
:class:`~repro.errors.WorkerCrashError` into the retry / fallback /
degraded-bound machinery of :mod:`repro.resilience`.

**Hygiene.**  All fabric segments carry a ``repro_fab_<pid>_`` name so
:func:`reap_orphans` can sweep ``/dev/shm`` leftovers of crashed runs
(only segments whose creating pid is dead are touched); every pool
start runs a sweep.  :meth:`BlockExecutor.health` reports the full
:class:`FabricHealth` snapshot — worker pids, restarts, re-executed
waves, reaped segments — which the service layer surfaces through
batch reports, daemon ``stats()``, and the ``health`` CLI command.

Per the HPC-Python guidance the worker bodies are fully vectorized
(one gather + min-reduce per configuration per chunk); only tiny task
tuples cross the process boundary.  Results are bit-identical to
:func:`repro.engines.base.fill_by_groups` over the same groups
(property-tested across the registry): the same narrow dtype, the same
per-configuration min-reduce, widened at the boundary by
:func:`repro.core.dp_common.widen_table`.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import re
import secrets
import signal
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.shared_memory import SharedMemory
from typing import Optional, Sequence

import numpy as np

from repro.core.dp_common import (
    DPResult,
    empty_dp_result,
    pick_table_dtype,
    unreachable_for,
    widen_table,
)
from repro.dptable.plan import ProbePlan, configs_signature
from repro.dptable.table import TableGeometry
from repro.errors import DPError, TableIntegrityError, WorkerCrashError
from repro.observability import context as obs
from repro.parallel.chunking import split_by_cost

#: Waves smaller than this many cells run inline in the parent —
#: dispatch overhead would dominate (the host-side analogue of the
#: paper's observation that narrow levels cannot feed wide hardware).
DEFAULT_MIN_PARALLEL_CELLS: int = 256

#: Plan shipments a :class:`BlockExecutor` keeps mapped (LRU).
DEFAULT_MAX_PLANS: int = 8

#: Wall seconds one dispatched wave may take before it is declared
#: lost.  Waves are small (a fraction of one fill), so a wave that
#: outlives this is wedged, not slow.
DEFAULT_WAVE_DEADLINE_S: float = 60.0

#: Pool terminate-and-respawn attempts one fill may spend on lost
#: waves before degrading (inline fallback or WorkerCrashError).
DEFAULT_MAX_POOL_RESTARTS: int = 2

#: Per-worker caches are bounded too: plan segments and table mappings
#: a worker keeps attached before closing the oldest.
_WORKER_MAX_PLANS: int = 8
_WORKER_MAX_TABLES: int = 4

#: Every fabric segment is named ``repro_fab_<creating-pid>_<token>``
#: so the reaper can attribute /dev/shm leftovers to a (dead) process.
_SEGMENT_PREFIX = "repro_fab_"
_SEGMENT_RE = re.compile(r"^repro_fab_(\d+)_[0-9a-f]+$")
_SHM_DIR = "/dev/shm"


def _strides_for(shape: Sequence[int]) -> np.ndarray:
    """Row-major element strides for ``shape`` (int64 vector)."""
    shape = tuple(int(s) for s in shape)
    return np.asarray(TableGeometry(shape).strides, dtype=np.int64)


# ---------------------------------------------------------------------------
# Start method (pinned, never platform-default fork)
# ---------------------------------------------------------------------------

_CTX = None
_CTX_METHOD: Optional[str] = None
_CTX_LOCK = threading.Lock()


def _fabric_context():
    """The fabric's pinned multiprocessing context (see module docs).

    ``forkserver`` with this module preloaded where the platform has
    it, ``spawn`` otherwise.  Deliberately never the default ``fork``:
    recovery must be able to trust that a respawned worker carries no
    inherited locks or thread state from the crashed generation.
    """
    global _CTX, _CTX_METHOD
    with _CTX_LOCK:
        if _CTX is None:
            try:
                ctx = get_context("forkserver")
                ctx.set_forkserver_preload(["repro.parallel.fabric"])
                _CTX_METHOD = "forkserver"
            except ValueError:  # platform without forkserver
                ctx = get_context("spawn")
                _CTX_METHOD = "spawn"
            _CTX = ctx
        return _CTX


def fabric_start_method() -> str:
    """The pinned start-method name (``"forkserver"`` or ``"spawn"``)."""
    _fabric_context()
    assert _CTX_METHOD is not None
    return _CTX_METHOD


# ---------------------------------------------------------------------------
# Segment naming + the orphan reaper
# ---------------------------------------------------------------------------


def _new_segment(nbytes: int) -> SharedMemory:
    """A fresh fabric-named shared segment (collision-retried)."""
    while True:
        name = f"{_SEGMENT_PREFIX}{os.getpid()}_{secrets.token_hex(8)}"
        try:
            return SharedMemory(create=True, size=nbytes, name=name)
        except FileExistsError:  # astronomically unlikely; pick again
            continue


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # exists, owned by someone else
        return True
    return True


def reap_orphans(shm_dir: str = _SHM_DIR) -> list:
    """Unlink fabric segments whose creating process is dead.

    A SIGKILLed run (worse: a SIGKILLed process *tree*, taking the
    multiprocessing resource tracker with it) can leave arena and
    shipment segments behind in ``/dev/shm``.  Segment names embed the
    creating pid, so leftovers are attributable: anything matching the
    fabric pattern whose pid no longer exists is garbage.  Live pids —
    including this process — are never touched, and foreign names
    (``psm_*`` or anything else) are ignored entirely.  Returns the
    reaped segment names; a no-op on platforms without ``/dev/shm``.
    """
    try:
        names = os.listdir(shm_dir)
    except (FileNotFoundError, NotADirectoryError, PermissionError):
        return []
    reaped = []
    own = os.getpid()
    for name in names:
        match = _SEGMENT_RE.match(name)
        if match is None:
            continue
        pid = int(match.group(1))
        if pid == own or _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(shm_dir, name))
        except (FileNotFoundError, PermissionError):
            continue  # raced with another reaper, or not ours to take
        reaped.append(name)
    if reaped:
        obs.count("fabric.reaped", len(reaped))
    return reaped


# ---------------------------------------------------------------------------
# The shared fill kernel (identical math to engines.base.fill_by_groups)
# ---------------------------------------------------------------------------


def _fill_range(
    table: np.ndarray,
    cells: np.ndarray,
    configs: np.ndarray,
    shape: tuple[int, ...],
    strides: np.ndarray,
    unreach: int,
    clipped: bool = False,
) -> int:
    """Fill one contiguous slice of a wave's cells; returns cells touched.

    Runs identically in the parent (inline path) and in pool workers:
    one predecessor gather + min-reduce per configuration, writes
    ``best + 1`` for reachable cells.  The origin (flat index 0) is
    pre-final and skipped.

    ``clipped=True`` runs the cover recurrence over a dominance-pruned
    configuration set (see :mod:`repro.core.sparsify`): predecessors
    are ``clip(u - c)`` and disjoint-support configurations — which
    clip back to the cell itself — are skipped.  Clipped predecessors
    sit at strictly lower wave levels, so wavefront safety holds
    unchanged.
    """
    cells = cells[cells != 0]
    if cells.size == 0:
        return 0
    coords = np.stack(np.unravel_index(cells, shape), axis=1)
    best = np.full(cells.size, unreach, dtype=table.dtype)
    for cfg in configs:
        if clipped:
            prev = np.maximum(coords - cfg, 0)
            ok = (prev != coords).any(axis=1)
        else:
            prev = coords - cfg
            ok = (prev >= 0).all(axis=1)
        if not ok.any():
            continue
        vals = table[prev[ok] @ strides]
        sel = np.flatnonzero(ok)
        best[sel] = np.minimum(best[sel], vals)
    reachable = best < unreach
    table[cells[reachable]] = best[reachable] + 1
    return int(cells.size)


# ---------------------------------------------------------------------------
# Arena
# ---------------------------------------------------------------------------


class SharedTableArena:
    """A narrow-dtype DP table in one shared-memory segment.

    Context-managed: ``close()`` drops this process's mapping and
    unlinks the OS object, and runs on block exit *including error
    paths* — no interpreter-exit hooks involved.  The table is
    initialised to the dtype's :func:`unreachable_for` sentinel with
    the origin at 0, ready for a wave fill.
    """

    def __init__(self, size: int, dtype: np.dtype) -> None:
        self.size = int(size)
        self.dtype = np.dtype(dtype)
        if self.size < 1:
            raise DPError(f"arena size must be >= 1, got {size}")
        self._shm: Optional[SharedMemory] = _new_segment(
            self.size * self.dtype.itemsize
        )
        self.name = self._shm.name
        self.table = np.ndarray((self.size,), dtype=self.dtype, buffer=self._shm.buf)
        self.table[:] = unreachable_for(self.dtype)
        self.table[0] = 0

    def verify(self, max_level: int) -> int:
        """Sentinel/integrity pass over the filled table; returns cells checked.

        A correct fill can only ever hold three things: ``0`` at the
        origin (and nowhere else), levels in ``[1, max_level]``, and
        the dtype's unreachable sentinel.  Anything outside that set —
        a torn write from a worker killed mid-store, a clobbered
        origin, garbage from a foreign mapping — raises
        :class:`~repro.errors.TableIntegrityError` (transient: a retry
        rebuilds the table from scratch in a fresh arena).  Unwritten
        ranges are indistinguishable from genuinely unreachable cells
        *by value*, so lost-wave detection is the executor's per-wave
        cell-claim check; this pass catches value corruption.
        """
        table = self.table
        if table is None:
            raise DPError("cannot verify a closed arena")
        unreach = unreachable_for(self.dtype)
        problems = []
        if int(table[0]) != 0:
            problems.append(f"origin cell holds {int(table[0])}, expected 0")
        zeros = int((table == 0).sum())
        if zeros != 1:
            problems.append(f"{zeros} zero cells (only the origin may be 0)")
        torn = int(((table > max_level) & (table != unreach)).sum())
        if torn:
            problems.append(
                f"{torn} cells outside [0, {max_level}] that are not the "
                f"sentinel {unreach}"
            )
        if problems:
            raise TableIntegrityError(
                "table integrity verification failed: " + "; ".join(problems)
            )
        return self.size

    def widened(self) -> np.ndarray:
        """An owned int64 copy of the table (safe to use after close)."""
        wide = widen_table(self.table)
        if wide is self.table:  # already int64 — still segment-backed
            wide = self.table.copy()
        return wide

    def close(self) -> None:
        """Release the mapping and unlink the segment (idempotent)."""
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        self.table = None  # drop the buffer view before closing
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # already unlinked elsewhere
            pass

    def __enter__(self) -> "SharedTableArena":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Plan shipments (parent side)
# ---------------------------------------------------------------------------


class _Shipment:
    """One plan's wave order + configs in a shared segment.

    Layout (all int64): ``configs.ravel()`` then the concatenated wave
    cell order (length = table size — waves tile the table).  Wave
    ``boundaries`` stay parent-side; workers only ever see ``(lo, hi)``
    slices.  The key digests the exact plan content, so a worker's
    cached attachment stays valid for as long as the key matches.
    """

    def __init__(
        self,
        key: tuple,
        shape: tuple[int, ...],
        configs: np.ndarray,
        order: np.ndarray,
        boundaries: np.ndarray,
    ) -> None:
        self.key = key
        self.shape = tuple(int(s) for s in shape)
        self.num_configs = int(configs.shape[0])
        self.boundaries = boundaries
        configs = np.ascontiguousarray(configs, dtype=np.int64)
        order = np.ascontiguousarray(order, dtype=np.int64)
        total = configs.size + order.size
        self._shm: Optional[SharedMemory] = _new_segment(max(1, total * 8))
        self.name = self._shm.name
        flat = np.ndarray((total,), dtype=np.int64, buffer=self._shm.buf)
        flat[: configs.size] = configs.ravel()
        flat[configs.size :] = order
        #: parent-side views for the inline path / cost indexing.
        self.configs = flat[: configs.size].reshape(configs.shape)
        self.order = flat[configs.size :]

    @property
    def closed(self) -> bool:
        """Whether the segment has been released (evicted or shut down)."""
        return self._shm is None

    def close(self) -> None:
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        self.configs = None
        self.order = None
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


def _plan_key(plan: ProbePlan, kind: str, dim: int) -> tuple:
    """Content digest identifying one plan's shipment.

    The wave order is a pure function of ``(kind, dim, shape)`` and the
    fill values of the configuration set, so hashing the exact
    :func:`configs_signature` (shape + configs bytes) plus the schedule
    kind fully determines the segment's bytes.  Gcd-normalized probes
    (:func:`~repro.dptable.plan.plan_signature` collisions) resolve to
    the same cached :class:`ProbePlan` and therefore the same digest —
    the zero-copy reuse the plan cache already set up.  Sparse
    shipments (kinds ``levels-sparse`` / ``blocked-sparse``) carry the
    dominance-pruned set, itself a pure function of ``configs``, so the
    same digest-of-full-set scheme identifies them.
    """
    sig = configs_signature(plan.geometry, plan.configs)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(repr((kind, int(dim), sig[1], sig[2])).encode())
    digest.update(sig[3])
    return (kind, int(dim), digest.hexdigest())


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

# Populated lazily inside pool workers; the parent never touches these
# (its inline path reads the shipment views directly).  Workers start
# from clean interpreters (forkserver/spawn), so the caches are empty
# until the first task attaches — and empty again in every respawned
# generation, which is exactly what recovery wants.
_W_PLANS: "OrderedDict[tuple, dict]" = OrderedDict()
_W_TABLES: "OrderedDict[str, dict]" = OrderedDict()


def _attach_plan(key: tuple, seg_name: str, shape: tuple[int, ...], num_configs: int) -> dict:
    """This worker's mapping of one plan shipment (attached on first use)."""
    entry = _W_PLANS.get(key)
    if entry is not None:
        _W_PLANS.move_to_end(key)
        return entry
    shm = SharedMemory(name=seg_name)
    shape = tuple(int(s) for s in shape)
    ndim = len(shape)
    size = 1
    for s in shape:
        size *= s
    total = num_configs * ndim + size
    flat = np.ndarray((total,), dtype=np.int64, buffer=shm.buf)
    entry = {
        "shm": shm,
        "configs": flat[: num_configs * ndim].reshape(num_configs, ndim),
        "order": flat[num_configs * ndim :],
        "shape": shape,
        "strides": _strides_for(shape),
    }
    _W_PLANS[key] = entry
    while len(_W_PLANS) > _WORKER_MAX_PLANS:
        _, old = _W_PLANS.popitem(last=False)
        old["shm"].close()
    return entry


def _attach_table(name: str, dtype_str: str, size: int) -> np.ndarray:
    """This worker's mapping of the current fill's table arena."""
    entry = _W_TABLES.get(name)
    if entry is not None:
        _W_TABLES.move_to_end(name)
        return entry["table"]
    shm = SharedMemory(name=name)
    table = np.ndarray((size,), dtype=np.dtype(dtype_str), buffer=shm.buf)
    _W_TABLES[name] = {"shm": shm, "table": table}
    while len(_W_TABLES) > _WORKER_MAX_TABLES:
        _, old = _W_TABLES.popitem(last=False)
        del old["table"]
        old["shm"].close()
    return table


def _fabric_work(task: tuple) -> int:
    """Fill ``order[lo:hi]`` of one wave (runs in a pool worker)."""
    (
        key,
        seg_name,
        shape,
        num_configs,
        table_name,
        dtype_str,
        size,
        lo,
        hi,
        clipped,
    ) = task
    plan = _attach_plan(key, seg_name, tuple(shape), num_configs)
    table = _attach_table(table_name, dtype_str, size)
    return _fill_range(
        table,
        plan["order"][lo:hi],
        plan["configs"],
        plan["shape"],
        plan["strides"],
        unreachable_for(table.dtype),
        clipped=bool(clipped),
    )


def _reset_worker_caches() -> None:
    """Close and forget this process's attachments (tests / reuse)."""
    for store in (_W_PLANS, _W_TABLES):
        for entry in store.values():
            for view_key in ("configs", "order", "table"):
                entry.pop(view_key, None)
            entry["shm"].close()
        store.clear()


# ---------------------------------------------------------------------------
# Health
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FabricHealth:
    """One executor's supervision snapshot (JSON-ready via ``as_dict``)."""

    #: configured pool width.
    workers: int
    #: whether a pool is currently running.
    alive: bool
    #: the pinned start method (``"forkserver"`` / ``"spawn"``).
    start_method: str
    #: pools started over the executor's lifetime (lazy starts count).
    generation: int
    #: live worker pids (empty when the pool is down).
    worker_pids: tuple
    #: crash-triggered terminate-and-respawn cycles.
    pool_restarts: int
    #: waves re-executed after being lost to a dead/wedged pool.
    waves_reexecuted: int
    #: chaos kills delivered by the ``fabric.worker`` fault site.
    workers_killed: int
    #: waves degraded to the inline path after the restart budget.
    inline_fallbacks: int
    #: plan shipments rebuilt after eviction raced an in-flight fill.
    plans_reshipped: int
    #: table cells covered by post-fill integrity verification.
    integrity_cells_checked: int
    #: integrity verifications that failed (each raised).
    integrity_failures: int
    #: orphaned ``/dev/shm`` segments reaped at pool starts.
    segments_reaped: int

    def as_dict(self) -> dict:
        """JSON-ready snapshot; zero recovery tallies are omitted
        (``CacheStats`` convention: quiet fabrics report no noise)."""
        out: dict = {
            "workers": self.workers,
            "alive": self.alive,
            "start_method": self.start_method,
            "generation": self.generation,
            "worker_pids": list(self.worker_pids),
        }
        for key, value in (
            ("pool_restarts", self.pool_restarts),
            ("waves_reexecuted", self.waves_reexecuted),
            ("workers_killed", self.workers_killed),
            ("inline_fallbacks", self.inline_fallbacks),
            ("plans_reshipped", self.plans_reshipped),
            ("integrity_cells_checked", self.integrity_cells_checked),
            ("integrity_failures", self.integrity_failures),
            ("segments_reaped", self.segments_reaped),
        ):
            if value:
                out[key] = value
        return out


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


class BlockExecutor:
    """A supervised, persistent process pool filling plan waves.

    The pool starts lazily on the first wave large enough to dispatch
    and survives across fills — the whole point: per-probe pool spawns
    were the dominant overhead of the old wavefront backend.  Plan
    shipments are cached (bounded LRU) and shipped to each worker at
    most once per plan.  ``close()`` releases the pool and every
    shipment but leaves the executor reusable: the next fill lazily
    restarts it.  Thread-safe — concurrent probe threads
    (:class:`~repro.core.executor.ParallelHostExecutor`) may share one
    fabric.

    Supervision parameters (all default on):

    ``faults``
        Optional :class:`~repro.resilience.FaultInjector`; its
        ``"fabric.worker"`` site is consulted once per dispatched wave
        and a hit SIGKILLs a live worker — the *real* chaos harness.
    ``wave_deadline_s``
        Wall deadline per dispatched wave; a wave past it is treated
        exactly like one lost to a dead worker.
    ``max_pool_restarts``
        Terminate-and-respawn attempts one ``fill`` may spend before
        degrading.
    ``inline_fallback``
        Past the restart budget, finish the fill inline in the parent
        (``True``, default) instead of raising
        :class:`~repro.errors.WorkerCrashError` (``False``).
    ``verify_integrity``
        Run :meth:`SharedTableArena.verify` before returning a table.
    """

    def __init__(
        self,
        workers: int = 4,
        min_parallel_cells: int = DEFAULT_MIN_PARALLEL_CELLS,
        max_plans: int = DEFAULT_MAX_PLANS,
        faults=None,
        wave_deadline_s: float = DEFAULT_WAVE_DEADLINE_S,
        max_pool_restarts: int = DEFAULT_MAX_POOL_RESTARTS,
        inline_fallback: bool = True,
        verify_integrity: bool = True,
    ) -> None:
        if workers < 1:
            raise DPError(f"workers must be >= 1, got {workers}")
        if wave_deadline_s <= 0:
            raise DPError(f"wave_deadline_s must be > 0, got {wave_deadline_s}")
        if max_pool_restarts < 0:
            raise DPError(
                f"max_pool_restarts must be >= 0, got {max_pool_restarts}"
            )
        self.workers = int(workers)
        self.min_parallel_cells = int(min_parallel_cells)
        self.max_plans = int(max_plans)
        self.faults = faults
        self.wave_deadline_s = float(wave_deadline_s)
        self.max_pool_restarts = int(max_pool_restarts)
        self.inline_fallback = bool(inline_fallback)
        self.verify_integrity = bool(verify_integrity)
        self._pool = None
        self._shipments: "OrderedDict[tuple, _Shipment]" = OrderedDict()
        self._lock = threading.RLock()
        #: lifetime tallies behind :meth:`health` (guarded by _lock).
        self._generation = 0
        self._close_count = 0
        self._restarts = 0
        self._waves_reexecuted = 0
        self._worker_kills = 0
        self._inline_fallbacks = 0
        self._plans_reshipped = 0
        self._integrity_checked = 0
        self._integrity_failures = 0
        self._reaped = 0

    # -- lifecycle -----------------------------------------------------------

    @property
    def alive(self) -> bool:
        """Whether the worker pool is currently running."""
        return self._pool is not None

    def _ensure_pool(self):
        with self._lock:
            if self._pool is None:
                self._reaped += len(reap_orphans())
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=_fabric_context()
                )
                self._generation += 1
                obs.count("fabric.pool.started")
            return self._pool

    @staticmethod
    def _worker_processes(pool) -> list:
        """The pool's live worker processes (spawned lazily on submit)."""
        procs = getattr(pool, "_processes", None) or {}
        return [
            p
            for p in list(procs.values())
            if p.pid is not None and p.exitcode is None
        ]

    def _stop_pool(self, pool, force: bool = False) -> None:
        """Shut one executor down; ``force`` SIGKILLs its workers first.

        The forced path exists for wedged workers: a clean
        ``shutdown(wait=True)`` would block on a worker that stopped
        answering, and a SIGKILLed worker just flips the executor into
        its broken state — which ``ProcessPoolExecutor`` shuts down
        promptly (the property ``multiprocessing.Pool`` lacked).
        """
        if force:
            for proc in self._worker_processes(pool):
                try:
                    os.kill(proc.pid, signal.SIGKILL)
                except (ProcessLookupError, PermissionError):
                    continue
        pool.shutdown(wait=True, cancel_futures=force)

    def close(self, force: bool = False) -> None:
        """Shut the pool down and unlink every shipment (idempotent).

        ``force=True`` terminates workers instead of letting queued
        tasks finish — the dirty-shutdown path of the service daemon.
        The executor stays usable: a later fill restarts the pool.  A
        fill in flight on another thread observes the close (its pool
        generation is gone) and raises a clean, retryable
        :class:`~repro.errors.WorkerCrashError` instead of mapping
        work into a dead pool.
        """
        with self._lock:
            self._close_count += 1
            pool, self._pool = self._pool, None
            shipments = list(self._shipments.values())
            self._shipments.clear()
        if pool is not None:
            self._stop_pool(pool, force=force)
        for shipment in shipments:
            shipment.close()

    def __enter__(self) -> "BlockExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def health(self) -> FabricHealth:
        """The executor's :class:`FabricHealth` snapshot (thread-safe)."""
        with self._lock:
            pool = self._pool
            pids: tuple = ()
            if pool is not None:
                pids = tuple(p.pid for p in self._worker_processes(pool))
            return FabricHealth(
                workers=self.workers,
                alive=pool is not None,
                start_method=fabric_start_method(),
                generation=self._generation,
                worker_pids=pids,
                pool_restarts=self._restarts,
                waves_reexecuted=self._waves_reexecuted,
                workers_killed=self._worker_kills,
                inline_fallbacks=self._inline_fallbacks,
                plans_reshipped=self._plans_reshipped,
                integrity_cells_checked=self._integrity_checked,
                integrity_failures=self._integrity_failures,
                segments_reaped=self._reaped,
            )

    # -- shipments -----------------------------------------------------------

    def _shipment_for(
        self,
        plan: ProbePlan,
        blocked_dim: Optional[int],
        sparsify: bool = False,
    ) -> _Shipment:
        base_kind = "levels" if blocked_dim is None else "blocked"
        kind = f"{base_kind}-sparse" if sparsify else base_kind
        key = _plan_key(plan, kind, -1 if blocked_dim is None else blocked_dim)
        with self._lock:
            shipment = self._shipments.get(key)
            if shipment is not None:
                self._shipments.move_to_end(key)
                obs.count("fabric.plan.reused")
                return shipment
        # Build outside the lock: schedule derivation can be expensive.
        if blocked_dim is None:
            schedule = plan.level_schedule
            order = schedule.order
            boundaries = np.asarray(schedule.boundaries, dtype=np.int64)
        else:
            groups = plan.blocked(blocked_dim).fill_groups
            order = (
                np.concatenate(groups)
                if groups
                else np.zeros(0, dtype=np.int64)
            )
            sizes = np.array([g.size for g in groups], dtype=np.int64)
            boundaries = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(sizes, dtype=np.int64)]
            )
        ship_configs = plan.sparse_configs if sparsify else plan.configs
        shipment = _Shipment(
            key, plan.geometry.shape, ship_configs, order, boundaries
        )
        with self._lock:
            existing = self._shipments.get(key)
            if existing is not None:  # raced with another probe thread
                shipment.close()
                self._shipments.move_to_end(key)
                obs.count("fabric.plan.reused")
                return existing
            self._shipments[key] = shipment
            obs.count("fabric.plan.shipped")
            evicted = []
            while len(self._shipments) > self.max_plans:
                _, old = self._shipments.popitem(last=False)
                evicted.append(old)
        for old in evicted:
            old.close()
        return shipment

    def _live_shipment(
        self,
        plan: ProbePlan,
        blocked_dim: Optional[int],
        sparsify: bool,
        shipment: _Shipment,
    ) -> _Shipment:
        """``shipment``, or a rebuilt one if it was closed mid-fill.

        LRU eviction (or a concurrent ``close``) can unlink a shipment
        another thread's fill is still walking; re-shipping is cheap
        and the fresh segment is attached lazily by whichever workers
        need it.
        """
        if not shipment.closed:
            return shipment
        with self._lock:
            if self._shipments.get(shipment.key) is shipment:
                self._shipments.pop(shipment.key, None)
            self._plans_reshipped += 1
        obs.count("fabric.plan.reshipped")
        return self._shipment_for(plan, blocked_dim, sparsify=sparsify)

    # -- supervision ---------------------------------------------------------

    def _maybe_kill_worker(self, procs: list, wave: int) -> None:
        """Realise a ``fabric.worker`` chaos decision as a real SIGKILL.

        Any kind drawn at the site means the same thing here: an OOMed,
        segfaulted, or wedged worker all present to the parent as a
        process that stops answering.  The short sleep lets workers
        pick their wave tasks up first, so the kill usually lands
        mid-task — the case recovery exists for.
        """
        if self.faults is None:
            return
        decide = getattr(self.faults, "decide", None)
        if decide is None:
            return
        if decide("fabric.worker", target=int(wave)) is None:
            return
        time.sleep(0.05)
        for proc in procs:
            if proc.pid is None or proc.exitcode is not None:
                continue
            try:
                os.kill(proc.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                continue
            with self._lock:
                self._worker_kills += 1
            obs.count("fabric.recovery.worker_kills")
            return

    def _dispatch_once(self, pool, tasks: list, wave: int):
        """One supervised dispatch of a wave's tasks.

        Returns ``(values, None)`` on success or ``(None, reason)``
        when the wave must be treated as lost.  A dead worker marks
        the executor broken and fails every outstanding future with
        ``BrokenProcessPool`` immediately, so the wait below returns
        promptly on a crash; the deadline only has to catch workers
        that are wedged but still alive.
        """
        try:
            pending = [pool.submit(_fabric_work, t) for t in tasks]
        except BrokenProcessPool:
            return None, "pool-broken"
        except RuntimeError:  # "cannot schedule new futures after shutdown"
            return None, "pool-closed"
        except OSError:
            # submit() spawns workers lazily; a crash that breaks the
            # executor mid-spawn surfaces as a raw OSError ("handle is
            # closed") from the spawn machinery, not BrokenProcessPool.
            return None, "pool-broken"
        self._maybe_kill_worker(self._worker_processes(pool), wave)
        _, not_done = futures_wait(pending, timeout=self.wave_deadline_s)
        if not_done:
            for fut in not_done:
                fut.cancel()
            return None, "wave-deadline"
        values = []
        try:
            for fut in pending:
                values.append(fut.result())
        except BrokenProcessPool:
            return None, "worker-death"
        except FileNotFoundError:
            # A worker could not attach the plan segment: evicted (or
            # closed) between dispatch and attach.  Re-ship and retry.
            return None, "shipment-missing"
        except (BrokenPipeError, ConnectionError, EOFError, OSError):
            return None, "pool-broken"
        return values, None

    def _respawn(self, expected_pool) -> None:
        """Tear a lost pool down; the next dispatch lazily restarts it.

        No-ops when ``expected_pool`` is no longer current — a
        concurrent fill already respawned, or ``close()`` intervened
        (its caller detects that via the close counter and raises).
        """
        with self._lock:
            if self._pool is not expected_pool:
                return
            self._pool = None
            self._restarts += 1
        obs.count("fabric.recovery.restarts")
        self._stop_pool(expected_pool, force=True)

    def _run_wave_supervised(
        self,
        plan: ProbePlan,
        blocked_dim: Optional[int],
        sparsify: bool,
        shipment: _Shipment,
        arena: SharedTableArena,
        shape: tuple,
        strides: np.ndarray,
        unreach: int,
        dtype: np.dtype,
        size: int,
        cost: np.ndarray,
        lo: int,
        hi: int,
        wave: int,
        close_mark: int,
        state: dict,
    ) -> _Shipment:
        """Execute one parallel wave to completion, recovering losses.

        Re-executing a lost wave is idempotent by construction: its
        cells are disjoint, their dependencies live in earlier waves,
        and the kernel is deterministic — any partial writes from the
        lost dispatch are overwritten with identical values
        (bit-identity is property-tested).  Returns the (possibly
        re-shipped) live shipment for subsequent waves.
        """
        reships = 0
        while True:
            shipment = self._live_shipment(plan, blocked_dim, sparsify, shipment)
            expected = int(np.count_nonzero(shipment.order[lo:hi]))
            wave_costs = cost[shipment.order[lo:hi]].astype(np.float64)
            tasks = [
                (
                    shipment.key,
                    shipment.name,
                    shape,
                    shipment.num_configs,
                    arena.name,
                    dtype.str,
                    size,
                    lo + a,
                    lo + b,
                    sparsify,
                )
                for a, b in split_by_cost(wave_costs, self.workers)
            ]
            pool = self._ensure_pool()
            values, failure = self._dispatch_once(pool, tasks, wave)
            if failure is None and sum(values) != expected:
                # Cell-claim check: every task reports how many cells
                # it wrote; a shortfall means a worker returned without
                # covering its range (unwritten cells are *not*
                # detectable by value — they look unreachable).
                failure = "short-claim"
            if failure is None:
                obs.count("fabric.waves.parallel")
                return shipment
            if self._close_count != close_mark:
                # Not a crash: close(force=...) landed mid-fill.  The
                # generation this fill dispatched into is gone — raise
                # the clean retryable error instead of recovering into
                # a pool the owner just asked us to tear down.
                raise WorkerCrashError(
                    f"fill fabric closed during an in-flight fill (wave "
                    f"{wave}: {failure}); the probe is safe to retry"
                )
            if failure == "shipment-missing":
                if reships < 3:
                    reships += 1
                    shipment.close()  # force _live_shipment to rebuild
                    continue
                failure = "shipment-unattachable"
            if state["restarts"] < self.max_pool_restarts:
                state["restarts"] += 1
                self._respawn(pool)
                with self._lock:
                    self._waves_reexecuted += 1
                obs.count("fabric.recovery.waves_reexecuted")
                continue
            # Budget exhausted: degrade rather than loop forever.
            self._respawn(pool)
            if self.inline_fallback:
                state["degraded_inline"] = True
                _fill_range(
                    arena.table,
                    shipment.order[lo:hi],
                    shipment.configs,
                    shape,
                    strides,
                    unreach,
                    clipped=sparsify,
                )
                with self._lock:
                    self._inline_fallbacks += 1
                obs.count("fabric.recovery.inline_fills")
                obs.count("fabric.waves.inline")
                return shipment
            raise WorkerCrashError(
                f"fill fabric lost wave {wave} ({failure}) and exhausted "
                f"its {self.max_pool_restarts}-restart recovery budget"
            )

    # -- filling -------------------------------------------------------------

    def fill(
        self,
        plan: ProbePlan,
        blocked_dim: Optional[int] = None,
        min_parallel_cells: Optional[int] = None,
        sparsify: bool = False,
    ) -> np.ndarray:
        """Execute one plan's waves; returns the flat int64 table.

        ``blocked_dim=None`` walks the anti-diagonal level schedule
        (Algorithm 2); an integer walks the blocked
        ``(block-level, in-block-level)`` groups for that block count
        (Algorithms 4+5).  Waves below ``min_parallel_cells`` (or all
        waves, for a 1-worker fabric) run inline in the parent; larger
        waves are cut into cost-balanced ranges
        (:func:`~repro.parallel.chunking.split_by_cost`, weighted by
        ``plan.candidates``) and dispatched to the supervised pool.
        The wave loop is the barrier.  Bit-identical to
        :func:`~repro.engines.base.fill_by_groups` over the same
        groups — including after worker deaths, pool respawns, and
        inline degradation (see :meth:`_run_wave_supervised`).

        ``sparsify=True`` ships the plan's dominance-pruned maximal
        subset and fills with clipped gathers (same wave order, fewer
        configuration passes per cell) — the resulting table is still
        bit-identical to the dense fill.
        """
        geometry = plan.geometry
        if geometry.ndim == 0:
            return np.zeros(1, dtype=np.int64)
        threshold = (
            self.min_parallel_cells
            if min_parallel_cells is None
            else int(min_parallel_cells)
        )
        size = geometry.size
        shape = geometry.shape
        dtype = pick_table_dtype(geometry.max_level)
        unreach = unreachable_for(dtype)
        strides = np.asarray(geometry.strides, dtype=np.int64)

        shipment = self._shipment_for(plan, blocked_dim, sparsify=sparsify)
        boundaries = shipment.boundaries
        if int(boundaries[-1]) != size:
            raise DPError(
                f"schedule covered {int(boundaries[-1])} of {size} cells; "
                "waves must tile the table"
            )
        cost = plan.candidates
        obs.count("fabric.fill.calls")
        obs.count("fabric.fill.cells", size)
        close_mark = self._close_count
        # Per-fill recovery budget; "degraded_inline" pins the rest of
        # the fill to the parent once the budget is spent.
        state = {"restarts": 0, "degraded_inline": False}

        with SharedTableArena(size, dtype) as arena:
            table = arena.table
            for wave in range(boundaries.size - 1):
                lo, hi = int(boundaries[wave]), int(boundaries[wave + 1])
                if hi <= lo:
                    continue
                if (
                    self.workers == 1
                    or hi - lo < threshold
                    or state["degraded_inline"]
                ):
                    shipment = self._live_shipment(
                        plan, blocked_dim, sparsify, shipment
                    )
                    _fill_range(
                        table,
                        shipment.order[lo:hi],
                        shipment.configs,
                        shape,
                        strides,
                        unreach,
                        clipped=sparsify,
                    )
                    obs.count("fabric.waves.inline")
                    continue
                shipment = self._run_wave_supervised(
                    plan,
                    blocked_dim,
                    sparsify,
                    shipment,
                    arena,
                    shape,
                    strides,
                    unreach,
                    dtype,
                    size,
                    cost,
                    lo,
                    hi,
                    wave,
                    close_mark,
                    state,
                )
            if self.verify_integrity:
                try:
                    arena.verify(geometry.max_level)
                except TableIntegrityError:
                    with self._lock:
                        self._integrity_failures += 1
                    obs.count("integrity.failures")
                    raise
                with self._lock:
                    self._integrity_checked += size
                obs.count("integrity.checked", size)
            return arena.widened()


# ---------------------------------------------------------------------------
# Shared fabrics + the hostpar backend
# ---------------------------------------------------------------------------

_SHARED_FABRICS: dict[int, BlockExecutor] = {}
_SHARED_LOCK = threading.Lock()


def shared_fabric(workers: int = 4) -> BlockExecutor:
    """The process-wide fabric for ``workers`` (created on first use).

    Registry factories build a fresh solver per request; sharing the
    executor here is what makes the pool — and the shipped plans —
    persist across probes.  :func:`shutdown_fabrics` releases them all
    (each stays reusable afterwards).
    """
    workers = int(workers)
    if workers < 1:
        raise DPError(f"workers must be >= 1, got {workers}")
    with _SHARED_LOCK:
        fabric = _SHARED_FABRICS.get(workers)
        if fabric is None:
            fabric = BlockExecutor(workers=workers)
            _SHARED_FABRICS[workers] = fabric
        return fabric


def shutdown_fabrics(force: bool = False) -> int:
    """Close every shared fabric; returns how many had a live pool."""
    with _SHARED_LOCK:
        fabrics = list(_SHARED_FABRICS.values())
    closed = sum(1 for f in fabrics if f.alive)
    for fabric in fabrics:
        fabric.close(force=force)
    return closed


# Shared fabrics are process-wide by design, so no scope closes them;
# unlink their shipment segments before the resource tracker can flag
# them at interpreter exit.  Explicitly-owned executors (the service
# pipeline, the CLI) are closed by their owners long before this.
atexit.register(shutdown_fabrics, force=True)


class HostParallelSolver:
    """``hostpar-<p>``: exact DP fills on the shared fill fabric.

    Satisfies the :class:`~repro.core.ptas.DPSolver` protocol.  Unlike
    the historical wavefront backend this keeps its worker pool (and
    shipped plans) alive across probes via :func:`shared_fabric` —
    pass ``fill_fabric`` to pin a specific executor instead (the
    service pipeline does, so its lifecycle hooks own the pool).
    Pure wall-clock execution: no simulated time, no ``runs`` log.
    ``sparsify`` fills with the dominance-pruned set via clipped
    gathers (bit-identical tables, default off).  ``min_parallel_cells``
    defaults to ``None`` — defer to the fabric's own threshold, so the
    executor that owns the pool (the service pipeline, a tuned CLI run)
    controls when waves dispatch.
    """

    supports_sparsify = True

    def __init__(
        self,
        workers: int = 4,
        min_parallel_cells: Optional[int] = None,
        plan_cache=None,
        fill_fabric: Optional[BlockExecutor] = None,
        sparsify: bool = False,
    ) -> None:
        if workers < 1:
            raise DPError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.min_parallel_cells = (
            None if min_parallel_cells is None else int(min_parallel_cells)
        )
        self.plan_cache = plan_cache
        self.fabric = fill_fabric if fill_fabric is not None else shared_fabric(workers)
        self.sparsify = bool(sparsify)

    @property
    def name(self) -> str:
        """Backend label, e.g. ``hostpar-4``."""
        return f"hostpar-{self.workers}"

    def __call__(
        self,
        counts: Sequence[int],
        class_sizes: Sequence[int],
        target: int,
        configs: Optional[np.ndarray] = None,
        model_token: Optional[tuple] = None,
        sparsify: Optional[bool] = None,
    ) -> DPResult:
        """DPSolver protocol: solve one probe on the fabric."""
        counts = tuple(int(c) for c in counts)
        if len(counts) != len(class_sizes):
            raise DPError("counts and class_sizes must have equal length")
        if len(counts) == 0:
            return empty_dp_result()
        from repro.engines.base import resolve_plan

        effective = self.sparsify if sparsify is None else bool(sparsify)
        plan = resolve_plan(
            self.plan_cache, counts, class_sizes, target, configs, None,
            model_token=model_token,
        )
        if configs is None:
            configs = plan.configs
        flat = self.fabric.fill(
            plan,
            min_parallel_cells=self.min_parallel_cells,
            sparsify=effective,
        )
        return DPResult(table=flat.reshape(plan.geometry.shape), configs=configs)
