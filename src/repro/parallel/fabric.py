"""The shared-memory fill fabric: process-parallel plan execution.

This module generalises the SharedMemory machinery that used to live
privately in :mod:`repro.parallel.wavefront` into a layer **any**
plan-aware engine can use:

* :class:`SharedTableArena` — one context-managed shared segment
  holding a narrow-dtype DP table (dtype from
  :func:`repro.core.dp_common.pick_table_dtype`), closed *and*
  unlinked on block exit no matter what — a raised
  :class:`~repro.errors.DPError` must not leak segments.

* :class:`BlockExecutor` — a persistent process pool that dispatches a
  plan's anti-diagonal waves (the level schedule of Algorithm 2, or
  the blocked ``(block-level, in-block-level)`` groups of
  Algorithms 4+5) over the arena.  Each plan's wave order and
  configuration set are written to a shared segment **once** and
  attached lazily **once per worker**, keyed on a digest of the exact
  plan signature (:func:`repro.dptable.plan.configs_signature`), so
  repeated probes over the same plan reuse the mapping zero-copy.

* :class:`HostParallelSolver` — the ``hostpar-<p>`` registry backend:
  a thin :class:`~repro.core.ptas.DPSolver` client of the fabric.

Per the HPC-Python guidance the worker bodies are fully vectorized
(one gather + min-reduce per configuration per chunk); only tiny task
tuples cross the process boundary.  Cells of one wave are disjoint and
all their dependencies were produced by earlier waves, so workers
write without synchronisation — the paper's wavefront safety argument.

Results are bit-identical to :func:`repro.engines.base.fill_by_groups`
over the same groups (property-tested across the registry): the same
narrow dtype, the same per-configuration min-reduce, widened at the
boundary by :func:`repro.core.dp_common.widen_table`.
"""

from __future__ import annotations

import atexit
import hashlib
import threading
from collections import OrderedDict
from multiprocessing import get_context
from multiprocessing.shared_memory import SharedMemory
from typing import Optional, Sequence

import numpy as np

from repro.core.dp_common import (
    DPResult,
    empty_dp_result,
    pick_table_dtype,
    unreachable_for,
    widen_table,
)
from repro.dptable.plan import ProbePlan, configs_signature
from repro.dptable.table import TableGeometry
from repro.errors import DPError
from repro.observability import context as obs
from repro.parallel.chunking import split_by_cost

#: Waves smaller than this many cells run inline in the parent —
#: dispatch overhead would dominate (the host-side analogue of the
#: paper's observation that narrow levels cannot feed wide hardware).
DEFAULT_MIN_PARALLEL_CELLS: int = 256

#: Plan shipments a :class:`BlockExecutor` keeps mapped (LRU).
DEFAULT_MAX_PLANS: int = 8

#: Per-worker caches are bounded too: plan segments and table mappings
#: a worker keeps attached before closing the oldest.
_WORKER_MAX_PLANS: int = 8
_WORKER_MAX_TABLES: int = 4


def _strides_for(shape: Sequence[int]) -> np.ndarray:
    """Row-major element strides for ``shape`` (int64 vector)."""
    shape = tuple(int(s) for s in shape)
    return np.asarray(TableGeometry(shape).strides, dtype=np.int64)


# ---------------------------------------------------------------------------
# The shared fill kernel (identical math to engines.base.fill_by_groups)
# ---------------------------------------------------------------------------


def _fill_range(
    table: np.ndarray,
    cells: np.ndarray,
    configs: np.ndarray,
    shape: tuple[int, ...],
    strides: np.ndarray,
    unreach: int,
    clipped: bool = False,
) -> int:
    """Fill one contiguous slice of a wave's cells; returns cells touched.

    Runs identically in the parent (inline path) and in pool workers:
    one predecessor gather + min-reduce per configuration, writes
    ``best + 1`` for reachable cells.  The origin (flat index 0) is
    pre-final and skipped.

    ``clipped=True`` runs the cover recurrence over a dominance-pruned
    configuration set (see :mod:`repro.core.sparsify`): predecessors
    are ``clip(u - c)`` and disjoint-support configurations — which
    clip back to the cell itself — are skipped.  Clipped predecessors
    sit at strictly lower wave levels, so wavefront safety holds
    unchanged.
    """
    cells = cells[cells != 0]
    if cells.size == 0:
        return 0
    coords = np.stack(np.unravel_index(cells, shape), axis=1)
    best = np.full(cells.size, unreach, dtype=table.dtype)
    for cfg in configs:
        if clipped:
            prev = np.maximum(coords - cfg, 0)
            ok = (prev != coords).any(axis=1)
        else:
            prev = coords - cfg
            ok = (prev >= 0).all(axis=1)
        if not ok.any():
            continue
        vals = table[prev[ok] @ strides]
        sel = np.flatnonzero(ok)
        best[sel] = np.minimum(best[sel], vals)
    reachable = best < unreach
    table[cells[reachable]] = best[reachable] + 1
    return int(cells.size)


# ---------------------------------------------------------------------------
# Arena
# ---------------------------------------------------------------------------


class SharedTableArena:
    """A narrow-dtype DP table in one shared-memory segment.

    Context-managed: ``close()`` drops this process's mapping and
    unlinks the OS object, and runs on block exit *including error
    paths* — no interpreter-exit hooks involved.  The table is
    initialised to the dtype's :func:`unreachable_for` sentinel with
    the origin at 0, ready for a wave fill.
    """

    def __init__(self, size: int, dtype: np.dtype) -> None:
        self.size = int(size)
        self.dtype = np.dtype(dtype)
        if self.size < 1:
            raise DPError(f"arena size must be >= 1, got {size}")
        self._shm: Optional[SharedMemory] = SharedMemory(
            create=True, size=self.size * self.dtype.itemsize
        )
        self.name = self._shm.name
        self.table = np.ndarray((self.size,), dtype=self.dtype, buffer=self._shm.buf)
        self.table[:] = unreachable_for(self.dtype)
        self.table[0] = 0

    def widened(self) -> np.ndarray:
        """An owned int64 copy of the table (safe to use after close)."""
        wide = widen_table(self.table)
        if wide is self.table:  # already int64 — still segment-backed
            wide = self.table.copy()
        return wide

    def close(self) -> None:
        """Release the mapping and unlink the segment (idempotent)."""
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        self.table = None  # drop the buffer view before closing
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # already unlinked elsewhere
            pass

    def __enter__(self) -> "SharedTableArena":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Plan shipments (parent side)
# ---------------------------------------------------------------------------


class _Shipment:
    """One plan's wave order + configs in a shared segment.

    Layout (all int64): ``configs.ravel()`` then the concatenated wave
    cell order (length = table size — waves tile the table).  Wave
    ``boundaries`` stay parent-side; workers only ever see ``(lo, hi)``
    slices.  The key digests the exact plan content, so a worker's
    cached attachment stays valid for as long as the key matches.
    """

    def __init__(
        self,
        key: tuple,
        shape: tuple[int, ...],
        configs: np.ndarray,
        order: np.ndarray,
        boundaries: np.ndarray,
    ) -> None:
        self.key = key
        self.shape = tuple(int(s) for s in shape)
        self.num_configs = int(configs.shape[0])
        self.boundaries = boundaries
        configs = np.ascontiguousarray(configs, dtype=np.int64)
        order = np.ascontiguousarray(order, dtype=np.int64)
        total = configs.size + order.size
        self._shm: Optional[SharedMemory] = SharedMemory(
            create=True, size=max(1, total * 8)
        )
        self.name = self._shm.name
        flat = np.ndarray((total,), dtype=np.int64, buffer=self._shm.buf)
        flat[: configs.size] = configs.ravel()
        flat[configs.size :] = order
        #: parent-side views for the inline path / cost indexing.
        self.configs = flat[: configs.size].reshape(configs.shape)
        self.order = flat[configs.size :]

    def close(self) -> None:
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        self.configs = None
        self.order = None
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


def _plan_key(plan: ProbePlan, kind: str, dim: int) -> tuple:
    """Content digest identifying one plan's shipment.

    The wave order is a pure function of ``(kind, dim, shape)`` and the
    fill values of the configuration set, so hashing the exact
    :func:`configs_signature` (shape + configs bytes) plus the schedule
    kind fully determines the segment's bytes.  Gcd-normalized probes
    (:func:`~repro.dptable.plan.plan_signature` collisions) resolve to
    the same cached :class:`ProbePlan` and therefore the same digest —
    the zero-copy reuse the plan cache already set up.  Sparse
    shipments (kinds ``levels-sparse`` / ``blocked-sparse``) carry the
    dominance-pruned set, itself a pure function of ``configs``, so the
    same digest-of-full-set scheme identifies them.
    """
    sig = configs_signature(plan.geometry, plan.configs)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(repr((kind, int(dim), sig[1], sig[2])).encode())
    digest.update(sig[3])
    return (kind, int(dim), digest.hexdigest())


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

# Populated lazily inside pool workers; the parent never touches these
# (its inline path reads the shipment views directly), so forked
# children start with empty caches.
_W_PLANS: "OrderedDict[tuple, dict]" = OrderedDict()
_W_TABLES: "OrderedDict[str, dict]" = OrderedDict()


def _attach_plan(key: tuple, seg_name: str, shape: tuple[int, ...], num_configs: int) -> dict:
    """This worker's mapping of one plan shipment (attached on first use)."""
    entry = _W_PLANS.get(key)
    if entry is not None:
        _W_PLANS.move_to_end(key)
        return entry
    shm = SharedMemory(name=seg_name)
    shape = tuple(int(s) for s in shape)
    ndim = len(shape)
    size = 1
    for s in shape:
        size *= s
    total = num_configs * ndim + size
    flat = np.ndarray((total,), dtype=np.int64, buffer=shm.buf)
    entry = {
        "shm": shm,
        "configs": flat[: num_configs * ndim].reshape(num_configs, ndim),
        "order": flat[num_configs * ndim :],
        "shape": shape,
        "strides": _strides_for(shape),
    }
    _W_PLANS[key] = entry
    while len(_W_PLANS) > _WORKER_MAX_PLANS:
        _, old = _W_PLANS.popitem(last=False)
        old["shm"].close()
    return entry


def _attach_table(name: str, dtype_str: str, size: int) -> np.ndarray:
    """This worker's mapping of the current fill's table arena."""
    entry = _W_TABLES.get(name)
    if entry is not None:
        _W_TABLES.move_to_end(name)
        return entry["table"]
    shm = SharedMemory(name=name)
    table = np.ndarray((size,), dtype=np.dtype(dtype_str), buffer=shm.buf)
    _W_TABLES[name] = {"shm": shm, "table": table}
    while len(_W_TABLES) > _WORKER_MAX_TABLES:
        _, old = _W_TABLES.popitem(last=False)
        del old["table"]
        old["shm"].close()
    return table


def _fabric_work(task: tuple) -> int:
    """Fill ``order[lo:hi]`` of one wave (runs in a pool worker)."""
    (
        key,
        seg_name,
        shape,
        num_configs,
        table_name,
        dtype_str,
        size,
        lo,
        hi,
        clipped,
    ) = task
    plan = _attach_plan(key, seg_name, tuple(shape), num_configs)
    table = _attach_table(table_name, dtype_str, size)
    return _fill_range(
        table,
        plan["order"][lo:hi],
        plan["configs"],
        plan["shape"],
        plan["strides"],
        unreachable_for(table.dtype),
        clipped=bool(clipped),
    )


def _reset_worker_caches() -> None:
    """Close and forget this process's attachments (tests / reuse)."""
    for store in (_W_PLANS, _W_TABLES):
        for entry in store.values():
            for view_key in ("configs", "order", "table"):
                entry.pop(view_key, None)
            entry["shm"].close()
        store.clear()


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


class BlockExecutor:
    """A persistent process pool filling plan waves over shared tables.

    The pool starts lazily on the first wave large enough to dispatch
    and survives across fills — the whole point: per-probe pool spawns
    were the dominant overhead of the old wavefront backend.  Plan
    shipments are cached (bounded LRU) and shipped to each worker at
    most once per plan.  ``close()`` releases the pool and every
    shipment but leaves the executor reusable: the next fill lazily
    restarts it.  Thread-safe — concurrent probe threads
    (:class:`~repro.core.executor.ParallelHostExecutor`) may share one
    fabric.
    """

    def __init__(
        self,
        workers: int = 4,
        min_parallel_cells: int = DEFAULT_MIN_PARALLEL_CELLS,
        max_plans: int = DEFAULT_MAX_PLANS,
    ) -> None:
        if workers < 1:
            raise DPError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.min_parallel_cells = int(min_parallel_cells)
        self.max_plans = int(max_plans)
        self._pool = None
        self._shipments: "OrderedDict[tuple, _Shipment]" = OrderedDict()
        self._lock = threading.RLock()

    # -- lifecycle -----------------------------------------------------------

    @property
    def alive(self) -> bool:
        """Whether the worker pool is currently running."""
        return self._pool is not None

    def _ensure_pool(self):
        with self._lock:
            if self._pool is None:
                ctx = get_context()
                self._pool = ctx.Pool(processes=self.workers)
                obs.count("fabric.pool.started")
            return self._pool

    def close(self, force: bool = False) -> None:
        """Shut the pool down and unlink every shipment (idempotent).

        ``force=True`` terminates workers instead of letting queued
        tasks finish — the dirty-shutdown path of the service daemon.
        The executor stays usable: a later fill restarts the pool.
        """
        with self._lock:
            pool, self._pool = self._pool, None
            shipments = list(self._shipments.values())
            self._shipments.clear()
        if pool is not None:
            if force:
                pool.terminate()
            else:
                pool.close()
            pool.join()
        for shipment in shipments:
            shipment.close()

    def __enter__(self) -> "BlockExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- shipments -----------------------------------------------------------

    def _shipment_for(
        self,
        plan: ProbePlan,
        blocked_dim: Optional[int],
        sparsify: bool = False,
    ) -> _Shipment:
        base_kind = "levels" if blocked_dim is None else "blocked"
        kind = f"{base_kind}-sparse" if sparsify else base_kind
        key = _plan_key(plan, kind, -1 if blocked_dim is None else blocked_dim)
        with self._lock:
            shipment = self._shipments.get(key)
            if shipment is not None:
                self._shipments.move_to_end(key)
                obs.count("fabric.plan.reused")
                return shipment
        # Build outside the lock: schedule derivation can be expensive.
        if blocked_dim is None:
            schedule = plan.level_schedule
            order = schedule.order
            boundaries = np.asarray(schedule.boundaries, dtype=np.int64)
        else:
            groups = plan.blocked(blocked_dim).fill_groups
            order = (
                np.concatenate(groups)
                if groups
                else np.zeros(0, dtype=np.int64)
            )
            sizes = np.array([g.size for g in groups], dtype=np.int64)
            boundaries = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(sizes, dtype=np.int64)]
            )
        ship_configs = plan.sparse_configs if sparsify else plan.configs
        shipment = _Shipment(
            key, plan.geometry.shape, ship_configs, order, boundaries
        )
        with self._lock:
            existing = self._shipments.get(key)
            if existing is not None:  # raced with another probe thread
                shipment.close()
                self._shipments.move_to_end(key)
                obs.count("fabric.plan.reused")
                return existing
            self._shipments[key] = shipment
            obs.count("fabric.plan.shipped")
            evicted = []
            while len(self._shipments) > self.max_plans:
                _, old = self._shipments.popitem(last=False)
                evicted.append(old)
        for old in evicted:
            old.close()
        return shipment

    # -- filling -------------------------------------------------------------

    def fill(
        self,
        plan: ProbePlan,
        blocked_dim: Optional[int] = None,
        min_parallel_cells: Optional[int] = None,
        sparsify: bool = False,
    ) -> np.ndarray:
        """Execute one plan's waves; returns the flat int64 table.

        ``blocked_dim=None`` walks the anti-diagonal level schedule
        (Algorithm 2); an integer walks the blocked
        ``(block-level, in-block-level)`` groups for that block count
        (Algorithms 4+5).  Waves below ``min_parallel_cells`` (or all
        waves, for a 1-worker fabric) run inline in the parent; larger
        waves are cut into cost-balanced ranges
        (:func:`~repro.parallel.chunking.split_by_cost`, weighted by
        ``plan.candidates``) and dispatched to the pool.  The wave loop
        is the barrier.  Bit-identical to
        :func:`~repro.engines.base.fill_by_groups` over the same
        groups.

        ``sparsify=True`` ships the plan's dominance-pruned maximal
        subset and fills with clipped gathers (same wave order, fewer
        configuration passes per cell) — the resulting table is still
        bit-identical to the dense fill.
        """
        geometry = plan.geometry
        if geometry.ndim == 0:
            return np.zeros(1, dtype=np.int64)
        threshold = (
            self.min_parallel_cells
            if min_parallel_cells is None
            else int(min_parallel_cells)
        )
        size = geometry.size
        shape = geometry.shape
        dtype = pick_table_dtype(geometry.max_level)
        unreach = unreachable_for(dtype)
        strides = np.asarray(geometry.strides, dtype=np.int64)

        shipment = self._shipment_for(plan, blocked_dim, sparsify=sparsify)
        boundaries = shipment.boundaries
        if int(boundaries[-1]) != size:
            raise DPError(
                f"schedule covered {int(boundaries[-1])} of {size} cells; "
                "waves must tile the table"
            )
        cost = plan.candidates
        obs.count("fabric.fill.calls")
        obs.count("fabric.fill.cells", size)

        with SharedTableArena(size, dtype) as arena:
            table = arena.table
            for wave in range(boundaries.size - 1):
                lo, hi = int(boundaries[wave]), int(boundaries[wave + 1])
                if hi <= lo:
                    continue
                if self.workers == 1 or hi - lo < threshold:
                    _fill_range(
                        table,
                        shipment.order[lo:hi],
                        shipment.configs,
                        shape,
                        strides,
                        unreach,
                        clipped=sparsify,
                    )
                    obs.count("fabric.waves.inline")
                    continue
                pool = self._ensure_pool()
                wave_costs = cost[shipment.order[lo:hi]].astype(np.float64)
                tasks = [
                    (
                        shipment.key,
                        shipment.name,
                        shape,
                        shipment.num_configs,
                        arena.name,
                        dtype.str,
                        size,
                        lo + a,
                        lo + b,
                        sparsify,
                    )
                    for a, b in split_by_cost(wave_costs, self.workers)
                ]
                pool.map(_fabric_work, tasks)
                obs.count("fabric.waves.parallel")
            return arena.widened()


# ---------------------------------------------------------------------------
# Shared fabrics + the hostpar backend
# ---------------------------------------------------------------------------

_SHARED_FABRICS: dict[int, BlockExecutor] = {}
_SHARED_LOCK = threading.Lock()


def shared_fabric(workers: int = 4) -> BlockExecutor:
    """The process-wide fabric for ``workers`` (created on first use).

    Registry factories build a fresh solver per request; sharing the
    executor here is what makes the pool — and the shipped plans —
    persist across probes.  :func:`shutdown_fabrics` releases them all
    (each stays reusable afterwards).
    """
    workers = int(workers)
    if workers < 1:
        raise DPError(f"workers must be >= 1, got {workers}")
    with _SHARED_LOCK:
        fabric = _SHARED_FABRICS.get(workers)
        if fabric is None:
            fabric = BlockExecutor(workers=workers)
            _SHARED_FABRICS[workers] = fabric
        return fabric


def shutdown_fabrics(force: bool = False) -> int:
    """Close every shared fabric; returns how many had a live pool."""
    with _SHARED_LOCK:
        fabrics = list(_SHARED_FABRICS.values())
    closed = sum(1 for f in fabrics if f.alive)
    for fabric in fabrics:
        fabric.close(force=force)
    return closed


# Shared fabrics are process-wide by design, so no scope closes them;
# unlink their shipment segments before the resource tracker can flag
# them at interpreter exit.  Explicitly-owned executors (the service
# pipeline, the CLI) are closed by their owners long before this.
atexit.register(shutdown_fabrics, force=True)


class HostParallelSolver:
    """``hostpar-<p>``: exact DP fills on the shared fill fabric.

    Satisfies the :class:`~repro.core.ptas.DPSolver` protocol.  Unlike
    the historical wavefront backend this keeps its worker pool (and
    shipped plans) alive across probes via :func:`shared_fabric` —
    pass ``fill_fabric`` to pin a specific executor instead (the
    service pipeline does, so its lifecycle hooks own the pool).
    Pure wall-clock execution: no simulated time, no ``runs`` log.
    ``sparsify`` fills with the dominance-pruned set via clipped
    gathers (bit-identical tables, default off).
    """

    supports_sparsify = True

    def __init__(
        self,
        workers: int = 4,
        min_parallel_cells: int = DEFAULT_MIN_PARALLEL_CELLS,
        plan_cache=None,
        fill_fabric: Optional[BlockExecutor] = None,
        sparsify: bool = False,
    ) -> None:
        if workers < 1:
            raise DPError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.min_parallel_cells = int(min_parallel_cells)
        self.plan_cache = plan_cache
        self.fabric = fill_fabric if fill_fabric is not None else shared_fabric(workers)
        self.sparsify = bool(sparsify)

    @property
    def name(self) -> str:
        """Backend label, e.g. ``hostpar-4``."""
        return f"hostpar-{self.workers}"

    def __call__(
        self,
        counts: Sequence[int],
        class_sizes: Sequence[int],
        target: int,
        configs: Optional[np.ndarray] = None,
        model_token: Optional[tuple] = None,
        sparsify: Optional[bool] = None,
    ) -> DPResult:
        """DPSolver protocol: solve one probe on the fabric."""
        counts = tuple(int(c) for c in counts)
        if len(counts) != len(class_sizes):
            raise DPError("counts and class_sizes must have equal length")
        if len(counts) == 0:
            return empty_dp_result()
        from repro.engines.base import resolve_plan

        effective = self.sparsify if sparsify is None else bool(sparsify)
        plan = resolve_plan(
            self.plan_cache, counts, class_sizes, target, configs, None,
            model_token=model_token,
        )
        if configs is None:
            configs = plan.configs
        flat = self.fabric.fill(
            plan,
            min_parallel_cells=self.min_parallel_cells,
            sparsify=effective,
        )
        return DPResult(table=flat.reshape(plan.geometry.shape), configs=configs)
