"""Work-splitting utilities for the host-parallel executors.

Two policies, mirroring OpenMP's ``static`` and a cost-aware variant:

* :func:`split_evenly` — contiguous, equally sized chunks;
* :func:`split_by_cost` — contiguous chunks of approximately equal
  *cost* given a per-item cost estimate, which is what the DP wants
  because per-cell work (``candidates(v)``) varies by orders of
  magnitude across one anti-diagonal level (the §III-B imbalance).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


def split_evenly(n_items: int, n_chunks: int) -> list[tuple[int, int]]:
    """Contiguous ``(start, stop)`` ranges covering ``range(n_items)``.

    At most ``n_chunks`` ranges; sizes differ by at most one.  Empty
    input yields no ranges.
    """
    if n_items < 0 or n_chunks < 1:
        raise ReproError(f"invalid split: n_items={n_items}, n_chunks={n_chunks}")
    if n_items == 0:
        return []
    n_chunks = min(n_chunks, n_items)
    base, extra = divmod(n_items, n_chunks)
    out = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        out.append((start, start + size))
        start += size
    return out


def split_by_cost(costs: np.ndarray, n_chunks: int) -> list[tuple[int, int]]:
    """Contiguous ranges with near-equal summed cost.

    Greedy cut at the points where cumulative cost crosses multiples of
    ``total / n_chunks``; never returns an empty range.
    """
    costs = np.asarray(costs, dtype=np.float64).ravel()
    if n_chunks < 1:
        raise ReproError(f"n_chunks must be >= 1, got {n_chunks}")
    if (costs < 0).any():
        raise ReproError("costs must be non-negative")
    n = costs.size
    if n == 0:
        return []
    n_chunks = min(n_chunks, n)
    total = float(costs.sum())
    if total <= 0:
        return split_evenly(n, n_chunks)
    cumulative = np.cumsum(costs)
    bounds = [0]
    for i in range(1, n_chunks):
        cut = int(np.searchsorted(cumulative, total * i / n_chunks, side="right"))
        cut = max(cut, bounds[-1] + 1)  # keep every range non-empty
        cut = min(cut, n - (n_chunks - i))  # leave room for later ranges
        bounds.append(cut)
    bounds.append(n)
    return [(bounds[i], bounds[i + 1]) for i in range(n_chunks)]
