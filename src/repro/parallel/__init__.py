"""Real host parallelism: execute the wavefront DP on this machine's cores.

The simulators model the paper's hardware; this package actually runs
the DP in parallel on the reproduction host, following the HPC-Python
guides: shared-memory numpy buffers (no pickling of the table),
process-based workers (sidestepping the GIL), and level-wise barriers
that mirror the paper's wavefront structure.

The load-bearing layer is :mod:`repro.parallel.fabric` — the shared-
memory fill fabric: a persistent process pool
(:class:`~repro.parallel.fabric.BlockExecutor`) over context-managed
narrow-dtype table arenas, with plans shipped once per worker.  Any
plan-aware engine can route its table fills through it; the
``wavefront-<w>`` and ``hostpar-<p>`` backends are its direct clients.
"""

from repro.parallel.chunking import split_evenly, split_by_cost
from repro.parallel.fabric import (
    BlockExecutor,
    HostParallelSolver,
    SharedTableArena,
    shared_fabric,
    shutdown_fabrics,
)
from repro.parallel.wavefront import WavefrontSolver, parallel_wavefront_dp

__all__ = [
    "parallel_wavefront_dp",
    "WavefrontSolver",
    "BlockExecutor",
    "HostParallelSolver",
    "SharedTableArena",
    "shared_fabric",
    "shutdown_fabrics",
    "split_evenly",
    "split_by_cost",
]
