"""Real host parallelism: execute the wavefront DP on this machine's cores.

The simulators model the paper's hardware; this package actually runs
the DP in parallel on the reproduction host, following the HPC-Python
guides: shared-memory numpy buffers (no pickling of the table),
process-based workers (sidestepping the GIL), and level-wise barriers
that mirror the paper's wavefront structure.  It demonstrates the same
speedup mechanism the OpenMP baseline uses and gives downstream users a
fast multi-core solver.
"""

from repro.parallel.wavefront import WavefrontSolver, parallel_wavefront_dp
from repro.parallel.chunking import split_evenly, split_by_cost

__all__ = [
    "parallel_wavefront_dp",
    "WavefrontSolver",
    "split_evenly",
    "split_by_cost",
]
