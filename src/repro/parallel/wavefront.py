"""Host-parallel wavefront DP — a thin client of the fill fabric.

Parallelises the anti-diagonal wavefront of Algorithm 2 across real OS
processes.  The worker-pool + SharedMemory plumbing that used to live
here moved to :mod:`repro.parallel.fabric`; this module keeps the
historical entry points:

* :func:`parallel_wavefront_dp` — one probe on the shared fabric for
  the requested worker count;
* :class:`WavefrontSolver` — the ``wavefront-<w>`` registry backend.

Two things changed with the move, both invisible in results (bit-
identity is property-tested):

* segments are **narrow-dtype** — the fill runs in the dtype
  :func:`repro.core.dp_common.pick_table_dtype` picks for the level
  bound and is widened to the canonical int64 table only at the
  boundary, instead of the historical always-int64 segments;
* the worker pool is **persistent and supervised** — pools are no
  longer spawned and torn down per probe, a probe's plan (wave order +
  configs) is shipped to each worker at most once, zero-copy, keyed on
  the exact plan signature, and the fabric pins a spawn-safe start
  method and recovers from real worker deaths by re-executing only the
  lost wave (see the fabric module docstring).

The level order, boundaries, and per-cell cost estimates still come
from the probe's :class:`~repro.dptable.plan.ProbePlan` — the *same*
schedule the simulated engines interpret, so real and modelled
execution provably walk identical wavefronts.  Table segments remain
context-managed per fill: closed and unlinked the moment the probe
exits, including on error paths such as a raised
:class:`~repro.errors.DPError`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.dp_common import DPResult, empty_dp_result
from repro.dptable.plan import ProbePlan
from repro.errors import DPError
from repro.parallel.fabric import (
    DEFAULT_MIN_PARALLEL_CELLS,
    BlockExecutor,
    shared_fabric,
)


def parallel_wavefront_dp(
    counts: Sequence[int],
    class_sizes: Sequence[int],
    target: int,
    configs: Optional[np.ndarray] = None,
    workers: int = 4,
    min_parallel_level: int = DEFAULT_MIN_PARALLEL_CELLS,
    plan: Optional[ProbePlan] = None,
    plan_cache=None,
    fill_fabric: Optional[BlockExecutor] = None,
    model_token: Optional[tuple] = None,
) -> DPResult:
    """Solve the DP on ``workers`` processes; result identical to serial.

    Levels smaller than ``min_parallel_level`` cells are executed
    inline (dispatch overhead would dominate).  ``plan`` /
    ``plan_cache`` follow the engine convention (see
    :func:`repro.engines.base.resolve_plan`).  ``fill_fabric`` pins a
    specific :class:`~repro.parallel.fabric.BlockExecutor`; by default
    the process-wide shared fabric for ``workers`` serves the fill.
    """
    counts = tuple(int(c) for c in counts)
    if len(counts) != len(class_sizes):
        raise DPError("counts and class_sizes must have equal length")
    if workers < 1:
        raise DPError(f"workers must be >= 1, got {workers}")
    if len(counts) == 0:
        return empty_dp_result()
    from repro.engines.base import resolve_plan

    plan = resolve_plan(
        plan_cache, counts, class_sizes, target, configs, plan,
        model_token=model_token,
    )
    if configs is None:
        configs = plan.configs
    fabric = fill_fabric if fill_fabric is not None else shared_fabric(workers)
    flat = fabric.fill(plan, min_parallel_cells=min_parallel_level)
    return DPResult(table=flat.reshape(plan.geometry.shape), configs=configs)


class WavefrontSolver:
    """:func:`parallel_wavefront_dp` as a registry backend.

    Binds the worker count (``"wavefront-<workers>"`` in
    :mod:`repro.backends`) and an optional shared
    :class:`~repro.core.probe_cache.PlanCache`, and satisfies the
    :class:`~repro.core.ptas.DPSolver` protocol so the PTAS drivers and
    the batch service can use real host parallelism like any other
    backend.  Pure wall-clock execution: no simulated time, no ``runs``
    log.
    """

    def __init__(
        self,
        workers: int = 4,
        min_parallel_level: int = DEFAULT_MIN_PARALLEL_CELLS,
        plan_cache=None,
        fill_fabric: Optional[BlockExecutor] = None,
    ) -> None:
        if workers < 1:
            raise DPError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.min_parallel_level = min_parallel_level
        self.plan_cache = plan_cache
        self.fill_fabric = fill_fabric

    @property
    def name(self) -> str:
        """Backend label, e.g. ``wavefront-4``."""
        return f"wavefront-{self.workers}"

    def __call__(
        self,
        counts: Sequence[int],
        class_sizes: Sequence[int],
        target: int,
        configs: Optional[np.ndarray] = None,
        model_token: Optional[tuple] = None,
    ) -> DPResult:
        """DPSolver protocol: solve one probe on the host pool."""
        return parallel_wavefront_dp(
            counts,
            class_sizes,
            target,
            configs,
            workers=self.workers,
            min_parallel_level=self.min_parallel_level,
            plan_cache=self.plan_cache,
            fill_fabric=self.fill_fabric,
            model_token=model_token,
        )
