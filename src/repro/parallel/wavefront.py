"""Host-parallel wavefront DP on shared memory.

Parallelises the anti-diagonal wavefront of Algorithm 2 across real OS
processes: the DP-table lives in a ``multiprocessing.shared_memory``
segment mapped zero-copy into every worker, each level's cells are cut
into cost-balanced contiguous ranges (:mod:`repro.parallel.chunking`),
and the level loop is the barrier.  Cells of one level are disjoint, so
workers write without synchronisation; dependencies are satisfied
because all earlier levels completed before the level was dispatched —
the same safety argument as the paper's wavefront.

This is genuinely parallel execution on the reproduction host (not the
simulator).  Per the HPC-Python guides: vectorized worker bodies, no
per-cell Python loops, no table pickling (only ``(lo, hi)`` ranges
cross the process boundary).
"""

from __future__ import annotations

import atexit
from multiprocessing import get_context
from multiprocessing.shared_memory import SharedMemory
from typing import Optional, Sequence

import numpy as np

from repro.core.configs import enumerate_configurations
from repro.core.dp_common import DPResult, UNREACHABLE, empty_dp_result
from repro.dptable.antidiagonal import cell_levels
from repro.dptable.table import TableGeometry
from repro.errors import DPError
from repro.parallel.chunking import split_by_cost

# Worker-process globals, populated by _init_worker.
_W: dict = {}


def _init_worker(table_name: str, order_name: str, size: int, shape, configs) -> None:
    """Map the shared segments into this worker (runs in the child)."""
    table_shm = SharedMemory(name=table_name)
    order_shm = SharedMemory(name=order_name)
    _W["table_shm"] = table_shm
    _W["order_shm"] = order_shm
    _W["table"] = np.ndarray((size,), dtype=np.int64, buffer=table_shm.buf)
    _W["order"] = np.ndarray((size,), dtype=np.int64, buffer=order_shm.buf)
    _W["shape"] = tuple(shape)
    _W["strides"] = np.asarray(TableGeometry(tuple(shape)).strides, dtype=np.int64)
    _W["configs"] = np.asarray(configs, dtype=np.int64)


def _work_range(bounds: tuple[int, int]) -> int:
    """Fill cells ``order[lo:hi]`` of the current level (runs in the child)."""
    lo, hi = bounds
    table = _W["table"]
    cells_flat = _W["order"][lo:hi]
    cells_flat = cells_flat[cells_flat != 0]  # the origin is pre-final
    if cells_flat.size == 0:
        return 0
    coords = np.stack(np.unravel_index(cells_flat, _W["shape"]), axis=1)
    best = np.full(cells_flat.size, UNREACHABLE, dtype=np.int64)
    for cfg in _W["configs"]:
        prev = coords - cfg
        ok = (prev >= 0).all(axis=1)
        if not ok.any():
            continue
        vals = table[prev[ok] @ _W["strides"]]
        sel = np.flatnonzero(ok)
        best[sel] = np.minimum(best[sel], vals)
    reachable = best < UNREACHABLE
    table[cells_flat[reachable]] = best[reachable] + 1
    return int(cells_flat.size)


def parallel_wavefront_dp(
    counts: Sequence[int],
    class_sizes: Sequence[int],
    target: int,
    configs: Optional[np.ndarray] = None,
    workers: int = 4,
    min_parallel_level: int = 256,
) -> DPResult:
    """Solve the DP on ``workers`` processes; result identical to serial.

    Levels smaller than ``min_parallel_level`` cells are executed inline
    (dispatch overhead would dominate) — the host-side analogue of the
    paper's observation that narrow levels cannot feed wide hardware.
    """
    counts = tuple(int(c) for c in counts)
    if len(counts) != len(class_sizes):
        raise DPError("counts and class_sizes must have equal length")
    if workers < 1:
        raise DPError(f"workers must be >= 1, got {workers}")
    if len(counts) == 0:
        return empty_dp_result()
    if configs is None:
        configs = enumerate_configurations(class_sizes, counts, target)

    geometry = TableGeometry.from_counts(counts)
    size = geometry.size

    levels = cell_levels(geometry)
    order = np.argsort(levels, kind="stable").astype(np.int64)
    boundaries = np.searchsorted(levels[order], np.arange(geometry.max_level + 2))
    # Per-cell cost estimate for balanced chunks: the downset size
    # dominates the real per-cell work (see costmodel.WorkProfile).
    cost = np.prod(geometry.all_cells() + 1, axis=1, dtype=np.float64)

    table_shm = SharedMemory(create=True, size=size * 8)
    order_shm = SharedMemory(create=True, size=size * 8)
    try:
        table = np.ndarray((size,), dtype=np.int64, buffer=table_shm.buf)
        table[:] = UNREACHABLE
        table[0] = 0
        shared_order = np.ndarray((size,), dtype=np.int64, buffer=order_shm.buf)
        shared_order[:] = order

        _init_worker(table_shm.name, order_shm.name, size, geometry.shape, configs)
        pool = None
        if workers > 1:
            ctx = get_context()
            pool = ctx.Pool(
                processes=workers,
                initializer=_init_worker,
                initargs=(table_shm.name, order_shm.name, size, geometry.shape, configs),
            )
        try:
            for lvl in range(1, geometry.max_level + 1):
                lo, hi = int(boundaries[lvl]), int(boundaries[lvl + 1])
                if hi <= lo:
                    continue
                if pool is None or hi - lo < min_parallel_level:
                    _work_range((lo, hi))
                    continue
                level_costs = cost[order[lo:hi]]
                ranges = [
                    (lo + a, lo + b) for a, b in split_by_cost(level_costs, workers)
                ]
                pool.map(_work_range, ranges)
        finally:
            if pool is not None:
                pool.close()
                pool.join()
        result = table.reshape(geometry.shape).copy()
    finally:
        _W.clear()
        table_shm.close()
        table_shm.unlink()
        order_shm.close()
        order_shm.unlink()

    return DPResult(table=result, configs=configs)
