"""Host-parallel wavefront DP on shared memory.

Parallelises the anti-diagonal wavefront of Algorithm 2 across real OS
processes: the DP-table lives in a ``multiprocessing.shared_memory``
segment mapped zero-copy into every worker, each level's cells are cut
into cost-balanced contiguous ranges (:mod:`repro.parallel.chunking`),
and the level loop is the barrier.  Cells of one level are disjoint, so
workers write without synchronisation; dependencies are satisfied
because all earlier levels completed before the level was dispatched —
the same safety argument as the paper's wavefront.

This is genuinely parallel execution on the reproduction host (not the
simulator).  Per the HPC-Python guides: vectorized worker bodies, no
per-cell Python loops, no table pickling (only ``(lo, hi)`` ranges
cross the process boundary).

The level order, boundaries, and per-cell cost estimates come from the
probe's :class:`~repro.dptable.plan.ProbePlan` — the *same* schedule
the simulated engines interpret, so real and modelled execution
provably walk identical wavefronts.  Shared-memory segments are
context-managed (:func:`_shared_segment`): they are closed and
unlinked the moment the probe exits, including on error paths such as
a raised :class:`~repro.errors.DPError` — no interpreter-exit hooks
involved.
"""

from __future__ import annotations

from contextlib import ExitStack, contextmanager
from multiprocessing import get_context
from multiprocessing.shared_memory import SharedMemory
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.core.dp_common import DPResult, UNREACHABLE, empty_dp_result
from repro.dptable.plan import ProbePlan
from repro.dptable.table import TableGeometry
from repro.errors import DPError
from repro.parallel.chunking import split_by_cost

# Worker-process globals, populated by _init_worker.
_W: dict = {}


def _init_worker(table_name: str, order_name: str, size: int, shape, configs) -> None:
    """Map the shared segments into this worker (runs in the child)."""
    table_shm = SharedMemory(name=table_name)
    order_shm = SharedMemory(name=order_name)
    _W["table_shm"] = table_shm
    _W["order_shm"] = order_shm
    _W["table"] = np.ndarray((size,), dtype=np.int64, buffer=table_shm.buf)
    _W["order"] = np.ndarray((size,), dtype=np.int64, buffer=order_shm.buf)
    _W["shape"] = tuple(shape)
    _W["strides"] = np.asarray(TableGeometry(tuple(shape)).strides, dtype=np.int64)
    _W["configs"] = np.asarray(configs, dtype=np.int64)


def _work_range(bounds: tuple[int, int]) -> int:
    """Fill cells ``order[lo:hi]`` of the current level (runs in the child)."""
    lo, hi = bounds
    table = _W["table"]
    cells_flat = _W["order"][lo:hi]
    cells_flat = cells_flat[cells_flat != 0]  # the origin is pre-final
    if cells_flat.size == 0:
        return 0
    coords = np.stack(np.unravel_index(cells_flat, _W["shape"]), axis=1)
    best = np.full(cells_flat.size, UNREACHABLE, dtype=np.int64)
    for cfg in _W["configs"]:
        prev = coords - cfg
        ok = (prev >= 0).all(axis=1)
        if not ok.any():
            continue
        vals = table[prev[ok] @ _W["strides"]]
        sel = np.flatnonzero(ok)
        best[sel] = np.minimum(best[sel], vals)
    reachable = best < UNREACHABLE
    table[cells_flat[reachable]] = best[reachable] + 1
    return int(cells_flat.size)


@contextmanager
def _shared_segment(nbytes: int) -> Iterator[SharedMemory]:
    """One shared-memory segment, released on block exit no matter what.

    ``close()`` drops this process's mapping; ``unlink()`` removes the
    OS object so nothing outlives the probe — also on exception paths
    (a raised :class:`DPError` must not leak segments, which is what
    the old ``atexit``-based cleanup could not guarantee mid-session).
    """
    segment = SharedMemory(create=True, size=nbytes)
    try:
        yield segment
    finally:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # already unlinked elsewhere
            pass


def parallel_wavefront_dp(
    counts: Sequence[int],
    class_sizes: Sequence[int],
    target: int,
    configs: Optional[np.ndarray] = None,
    workers: int = 4,
    min_parallel_level: int = 256,
    plan: Optional[ProbePlan] = None,
    plan_cache=None,
) -> DPResult:
    """Solve the DP on ``workers`` processes; result identical to serial.

    Levels smaller than ``min_parallel_level`` cells are executed inline
    (dispatch overhead would dominate) — the host-side analogue of the
    paper's observation that narrow levels cannot feed wide hardware.

    ``plan`` / ``plan_cache`` follow the engine convention (see
    :func:`repro.engines.base.resolve_plan`): pass a prebuilt
    :class:`~repro.dptable.plan.ProbePlan` to skip schedule
    derivation, or a :class:`~repro.core.probe_cache.PlanCache` to
    share schedules across probes; by default the process-wide plan
    cache serves the lookup.
    """
    counts = tuple(int(c) for c in counts)
    if len(counts) != len(class_sizes):
        raise DPError("counts and class_sizes must have equal length")
    if workers < 1:
        raise DPError(f"workers must be >= 1, got {workers}")
    if len(counts) == 0:
        return empty_dp_result()
    from repro.engines.base import resolve_plan

    plan = resolve_plan(plan_cache, counts, class_sizes, target, configs, plan)
    if configs is None:
        configs = plan.configs

    geometry = plan.geometry
    size = geometry.size

    schedule = plan.level_schedule
    order = schedule.order
    boundaries = schedule.boundaries
    # Per-cell cost estimate for balanced chunks: the downset size
    # (plan.candidates) dominates the real per-cell work.
    cost = plan.candidates.astype(np.float64)

    with ExitStack() as stack:
        table_shm = stack.enter_context(_shared_segment(size * 8))
        order_shm = stack.enter_context(_shared_segment(size * 8))
        stack.callback(_W.clear)

        table = np.ndarray((size,), dtype=np.int64, buffer=table_shm.buf)
        table[:] = UNREACHABLE
        table[0] = 0
        shared_order = np.ndarray((size,), dtype=np.int64, buffer=order_shm.buf)
        shared_order[:] = order

        _init_worker(table_shm.name, order_shm.name, size, geometry.shape, configs)
        pool = None
        if workers > 1:
            ctx = get_context()
            pool = ctx.Pool(
                processes=workers,
                initializer=_init_worker,
                initargs=(table_shm.name, order_shm.name, size, geometry.shape, configs),
            )
        try:
            for lvl in range(1, geometry.max_level + 1):
                lo, hi = int(boundaries[lvl]), int(boundaries[lvl + 1])
                if hi <= lo:
                    continue
                if pool is None or hi - lo < min_parallel_level:
                    _work_range((lo, hi))
                    continue
                level_costs = cost[order[lo:hi]]
                ranges = [
                    (lo + a, lo + b) for a, b in split_by_cost(level_costs, workers)
                ]
                pool.map(_work_range, ranges)
        finally:
            if pool is not None:
                pool.close()
                pool.join()
        result = table.reshape(geometry.shape).copy()

    return DPResult(table=result, configs=configs)


class WavefrontSolver:
    """:func:`parallel_wavefront_dp` as a registry backend.

    Binds the worker count (``"wavefront-<workers>"`` in
    :mod:`repro.backends`) and an optional shared
    :class:`~repro.core.probe_cache.PlanCache`, and satisfies the
    :class:`~repro.core.ptas.DPSolver` protocol so the PTAS drivers and
    the batch service can use real host parallelism like any other
    backend.  Pure wall-clock execution: no simulated time, no ``runs``
    log.
    """

    def __init__(
        self,
        workers: int = 4,
        min_parallel_level: int = 256,
        plan_cache=None,
    ) -> None:
        if workers < 1:
            raise DPError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.min_parallel_level = min_parallel_level
        self.plan_cache = plan_cache

    @property
    def name(self) -> str:
        """Backend label, e.g. ``wavefront-4``."""
        return f"wavefront-{self.workers}"

    def __call__(
        self,
        counts: Sequence[int],
        class_sizes: Sequence[int],
        target: int,
        configs: Optional[np.ndarray] = None,
    ) -> DPResult:
        """DPSolver protocol: solve one probe on the host pool."""
        return parallel_wavefront_dp(
            counts,
            class_sizes,
            target,
            configs,
            workers=self.workers,
            min_parallel_level=self.min_parallel_level,
            plan_cache=self.plan_cache,
        )
