"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch a single base class.  Errors are deliberately fine-grained: the
simulators, the DP engines, and the PTAS driver each raise a distinct
subclass, which keeps test assertions and user-facing error handling
precise.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidInstanceError(ReproError, ValueError):
    """An ``Instance`` violates the problem preconditions.

    Raised for non-positive processing times, zero machines, or an empty
    job set where the operation requires at least one job.
    """


class InvalidScheduleError(ReproError, ValueError):
    """A ``Schedule`` is structurally inconsistent with its instance.

    Examples: a job assigned to no machine or to two machines, or a
    machine index out of range.
    """


class InfeasibleError(ReproError):
    """No feasible assignment exists under the stated constraint.

    The DP raises this when asked to extract a schedule for a target
    makespan ``T`` that admits no packing of the rounded long jobs.
    """


class DPError(ReproError):
    """The dynamic program was driven with inconsistent inputs.

    Examples: a class-count vector and configuration set of different
    dimensionality, or a configuration exceeding the table bounds.
    """


class PartitionError(ReproError, ValueError):
    """The data-partitioning scheme received an invalid divisor.

    A divisor must have the table's dimensionality and divide each
    dimension extent exactly (Algorithm 4 guarantees this by
    construction; hand-built divisors may not).
    """


class SimulationError(ReproError):
    """A hardware simulator was driven into an inconsistent state.

    Examples: completing a kernel that was never launched, negative
    simulated durations, or exceeding device memory.
    """


class CalibrationError(ReproError):
    """A cost-model constant is outside its documented valid range."""


class BackendError(ReproError, LookupError):
    """A backend name could not be resolved against the registry.

    Raised by :func:`repro.backends.resolve` for unknown names; the
    message always lists the valid canonical names so callers (the CLI
    in particular) can surface an actionable error.
    """


class TransientError(ReproError):
    """Marker base for failures that may well succeed on retry.

    The resilience layer (:mod:`repro.resilience`) retries only
    subclasses of this marker (plus :class:`ProbeTimeoutError`);
    everything else is treated as deterministic — retrying an OOM or a
    genuinely invalid instance would only repeat the failure, so those
    flow to fallback chains and graceful degradation instead.
    """


class TransientDPError(DPError, TransientError):
    """A DP fill failed in a way that is expected to clear on retry.

    The :class:`~repro.resilience.FaultInjector` raises this for its
    ``"dperror"`` fault kind; real systems would map spurious device
    resets or checksum mismatches here.
    """


class TableIntegrityError(TransientDPError):
    """A filled DP table failed its post-fill integrity verification.

    Raised by :meth:`repro.parallel.fabric.SharedTableArena.verify`
    when the sentinel pass finds values no correct fill can produce —
    torn writes from a worker killed mid-store, a clobbered origin, or
    spurious zero cells.  Transient by design: every fill rebuilds its
    table from scratch in a fresh arena, so a retry starts clean.
    """


class WorkerCrashError(TransientError):
    """A probe worker died before producing a result.

    Models a crashed thread/process in the probe fan-out; transient by
    definition — the work itself was never attempted to completion.
    Since PR 10 this is also raised for *real* process deaths: the fill
    fabric (:mod:`repro.parallel.fabric`) surfaces it when a SIGKILLed
    or wedged pool worker exhausts the in-fabric recovery budget, and
    when an explicit ``close(force=True)`` lands mid-fill — both safe
    to retry on a fresh pool.
    """


class ProbeTimeoutError(ReproError):
    """A probe exceeded its per-probe deadline.

    Raised by the executors (:mod:`repro.core.executor`) when a
    :class:`~repro.resilience.ResiliencePolicy` sets ``deadline_s``.
    Classified as retryable: slowness is usually contention, and the
    retry budget caps how often an oversized probe is re-attempted.
    """


class QuotaExceededError(ReproError):
    """A tenant's admission quota refused a service request.

    Raised by :class:`repro.resilience.TenantQuota` (consulted by the
    always-on scheduling service) when a tenant already has its maximum
    number of requests queued or running.  Deliberately *not* transient:
    retrying immediately would re-hit the same full quota — back off and
    resubmit, or raise the tenant's limit.
    """


class ServiceClosedError(ReproError):
    """A request was submitted to a scheduling service that is shutting down.

    The always-on daemon (:class:`repro.service.SchedulingService`)
    raises this from ``submit`` once ``shutdown``/``drain`` has begun;
    requests admitted before the shutdown still complete.
    """


class MemoryBudgetExceeded(ReproError):
    """Admission control rejected a probe before any allocation.

    The estimated DP-table footprint (table plus relaxation scratch,
    from :func:`repro.core.dp_common.estimate_fill_bytes`) exceeds the
    configured ``memory_budget_bytes``.  Deliberately raised *before*
    the fill allocates anything, so one adversarial ``(eps, T)`` pair
    cannot take down a whole batch with a real ``MemoryError``.
    """
