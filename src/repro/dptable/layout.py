"""Blocked memory layout — the Algorithm 4 reorganization (lines 20–28).

The raw DP-table is row-major, so the cells of one block are scattered
across the array (strided).  The reorganization permutes storage so
each block's cells are contiguous: a cell's new offset is::

    offset(x) = block_id(x) * cells_per_block + inblock_rowmajor(x)

with blocks ordered row-major over the block grid.  Contiguity is what
turns the GPU's sub-configuration search and warp loads into coalesced
accesses — the central performance claim of the paper.

:class:`BlockedLayout` materialises the permutation once (vectorized)
and then converts tables and flat indices in O(1) numpy operations.
The permutation is a bijection by construction (property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.dptable.partition import BlockPartition
from repro.errors import PartitionError


@dataclass(frozen=True)
class BlockedLayout:
    """Bidirectional map between row-major and block-contiguous storage."""

    partition: BlockPartition

    # -- permutation -------------------------------------------------------------

    @cached_property
    def to_blocked(self) -> np.ndarray:
        """``to_blocked[flat_rowmajor] = blocked_offset`` (the ``M_offset`` map)."""
        part = self.partition
        cells = part.geometry.all_cells()
        block_shape = np.asarray(part.block_shape, dtype=np.int64)
        block_ids = part.cell_block_ids
        rel = cells % block_shape
        inblock = np.ravel_multi_index(tuple(rel.T), part.block_shape).astype(np.int64)
        return block_ids * part.cells_per_block + inblock

    @cached_property
    def to_rowmajor(self) -> np.ndarray:
        """Inverse permutation: ``to_rowmajor[blocked_offset] = flat_rowmajor``."""
        fwd = self.to_blocked
        inv = np.empty_like(fwd)
        inv[fwd] = np.arange(fwd.size, dtype=np.int64)
        return inv

    # -- conversions ---------------------------------------------------------------

    def blocked_offset(self, cell) -> int:
        """Blocked storage offset of a single cell (multi-index)."""
        flat = self.partition.geometry.ravel(cell)
        return int(self.to_blocked[flat])

    def reorganize(self, table: np.ndarray) -> np.ndarray:
        """Row-major dense table → flat block-contiguous array."""
        if tuple(table.shape) != self.partition.geometry.shape:
            raise PartitionError(
                f"table shape {table.shape} does not match geometry "
                f"{self.partition.geometry.shape}"
            )
        flat = np.ascontiguousarray(table).reshape(-1)
        out = np.empty_like(flat)
        out[self.to_blocked] = flat
        return out

    def restore(self, blocked: np.ndarray) -> np.ndarray:
        """Flat block-contiguous array → row-major dense table."""
        geometry = self.partition.geometry
        if blocked.size != geometry.size:
            raise PartitionError(
                f"blocked array has {blocked.size} cells, table needs {geometry.size}"
            )
        flat = blocked[self.to_blocked]
        return flat.reshape(geometry.shape)

    def block_slice(self, block) -> slice:
        """Contiguous range of one block in blocked storage.

        This contiguity is the point of the layout: a kernel working on
        ``block`` touches exactly ``[start, stop)`` — sequential
        addresses, hence coalesced warp loads.
        """
        part = self.partition
        if not part.block_grid.contains(block):
            raise PartitionError(f"block {tuple(block)} outside grid {part.divisor}")
        bid = part.block_grid.ravel(block)
        start = bid * part.cells_per_block
        return slice(start, start + part.cells_per_block)

    # -- diagnostics -----------------------------------------------------------------

    def strided_span(self, block) -> int:
        """Address span of a block's cells in the *original* row-major layout.

        ``span / cells_per_block`` measures how scattered the block was
        before reorganization; the ablation bench reports it to quantify
        the coalescing gain.
        """
        part = self.partition
        cells = part.cells_of_block(block)
        flats = np.ravel_multi_index(tuple(cells.T), part.geometry.shape)
        return int(flats.max() - flats.min() + 1)
