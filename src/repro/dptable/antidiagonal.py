"""Anti-diagonal wavefronts over a DP-table (Algorithm 2, lines 4–12).

The *level* of a cell is the sum of its coordinates.  Because every
machine configuration is non-zero, each DP dependency points to a cell
of strictly lower level; hence all cells of one level are independent
and can run in parallel — the wavefront that Figure 1 illustrates and
that both the OpenMP baseline and the GPU implementation schedule by.

All functions here are vectorized over the whole table (one numpy pass,
no per-cell Python loop), which is how the engines enumerate their work
without becoming the bottleneck themselves.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.dptable.table import TableGeometry
from repro.errors import DPError


def cell_levels(geometry: TableGeometry) -> np.ndarray:
    """Level (coordinate sum) of every cell, in flat row-major order.

    This is the ``d_i`` array of Algorithm 2 lines 4–8, computed in one
    vectorized pass instead of a parallel-for.
    """
    return geometry.all_cells().sum(axis=1)


def level_sizes(geometry: TableGeometry) -> np.ndarray:
    """Number of cells on each level ``0 .. max_level`` (length max_level+1).

    The level-size profile is the concurrency profile of the wavefront:
    its peak bounds how many threads can ever be busy at once, and its
    narrow head/tail are where the paper observes idle GPU cores.
    """
    levels = cell_levels(geometry)
    return np.bincount(levels, minlength=geometry.max_level + 1)


def cells_at_level(geometry: TableGeometry, level: int) -> np.ndarray:
    """Flat indices of all cells on ``level``, ascending."""
    if not (0 <= level <= geometry.max_level):
        raise DPError(
            f"level {level} out of range [0, {geometry.max_level}] for shape {geometry.shape}"
        )
    return np.flatnonzero(cell_levels(geometry) == level)


def wavefront(geometry: TableGeometry) -> Iterator[np.ndarray]:
    """Yield flat-index arrays level by level (level 0 first).

    One ``argsort`` over the level array replaces ``max_level`` full
    scans; each yielded array is the sorted flat indices of one level.
    """
    levels = cell_levels(geometry)
    order = np.argsort(levels, kind="stable")
    sorted_levels = levels[order]
    boundaries = np.searchsorted(
        sorted_levels, np.arange(geometry.max_level + 2)
    )
    for lvl in range(geometry.max_level + 1):
        yield np.sort(order[boundaries[lvl] : boundaries[lvl + 1]])


def is_topological_order(
    geometry: TableGeometry, order: Sequence[int], configs: np.ndarray
) -> bool:
    """Check that ``order`` respects every DP dependency.

    ``order`` is a permutation of flat indices; for each cell and each
    applicable configuration, the predecessor must appear earlier.  Used
    by property tests to certify that wavefront (and blocked-wavefront)
    schedules are safe execution orders.
    """
    pos = np.empty(geometry.size, dtype=np.int64)
    pos[np.asarray(order)] = np.arange(geometry.size)
    cells = geometry.all_cells()
    for row in configs:
        prev = cells - row
        valid = (prev >= 0).all(axis=1)
        if not valid.any():
            continue
        here = np.flatnonzero(valid)
        prev_flat = np.ravel_multi_index(
            tuple(prev[here].T), geometry.shape
        )
        if not (pos[prev_flat] < pos[here]).all():
            return False
    return True
