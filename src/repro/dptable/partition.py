"""The paper's data-partitioning scheme (Algorithm 4, lines 4–19).

A *divisor* vector ``(a_1, ..., a_d)`` cuts the table evenly: dimension
``i`` (extent ``e_i``) splits into ``a_i`` segments of ``e_i / a_i``
cells, so blocks are identical boxes of shape
``block_shape = (e_1/a_1, ..., e_d/a_d)``.  Blocks are indexed by their
own coordinate vector; the *block level* (coordinate sum) groups blocks
that may execute concurrently, exactly like anti-diagonal levels group
cells (Fig. 2: a 6x6x6 table under divisor (3,3,3) yields 27 blocks of
2x2x2 in 7 block-levels, each block holding 4 in-block levels).

Divisor construction follows Algorithm 4 literally:

* per dimension, start at ``floor(sqrt(extent))`` and decrement until
  the candidate divides the extent exactly (so the split is even);
* keep the divisors of the ``dim`` "largest" dimensions and reset the
  rest to 1 (those dimensions are not cut).

The paper does not pin down the tie-break for "largest"; we rank by
computed divisor, then extent, then index — and note in EXPERIMENTS.md
where the paper's own Tables I–VI disagree with any reading of its
Algorithm 4 (several printed block shapes imply divisors the stated
rule cannot produce, e.g. divisor 3 for extent 3 where
``floor(sqrt(3)) = 1`` already divides 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Iterator, Sequence

import numpy as np

from repro.dptable.table import TableGeometry
from repro.errors import PartitionError


def dimension_divisor(extent: int) -> int:
    """Largest integer ``<= sqrt(extent)`` that divides ``extent`` evenly.

    Algorithm 4 lines 6–8.  Always >= 1 (1 divides everything), so a
    prime extent simply is not cut.
    """
    if extent < 1:
        raise PartitionError(f"extent must be >= 1, got {extent}")
    div = int(math.isqrt(extent))
    while extent % div != 0:
        div -= 1
    return div


def compute_divisor(shape: Sequence[int], dim: int) -> tuple[int, ...]:
    """Divisor vector for ``shape``, cutting along ``dim`` dimensions.

    ``dim`` is the paper's ``dim`` parameter (3..9 in the experiments,
    GPU-DIM3 .. GPU-DIM9).  The rule, reverse-engineered from the
    paper's own Tables I–VI (which pin it down more precisely than the
    Algorithm 4 pseudocode):

    * the ``dim`` dimensions with the **largest extents** are cut
      (ties broken by lower index);
    * a cut dimension uses :func:`dimension_divisor` — the largest
      divisor at most ``sqrt(extent)``;
    * when that divisor is 1 (prime extent), the dimension is split
      fully into singleton segments (divisor = extent).  The pseudocode
      leaves this case silent, but 15+ of the paper's 18 printed block
      rows require it (e.g. extent 5 -> block size 1 in Table II).

    When the table has fewer than ``dim`` dimensions, all of them are
    cut — the paper observes this is why partitioning along more
    dimensions than the table has gains nothing (Fig. 3 discussion).
    """
    shape = tuple(int(s) for s in shape)
    if dim < 1:
        raise PartitionError(f"dim must be >= 1, got {dim}")
    ranked = sorted(range(len(shape)), key=lambda i: (-shape[i], i))
    keep = set(ranked[:dim])
    divisor = []
    for i, extent in enumerate(shape):
        if i not in keep:
            divisor.append(1)
            continue
        div = dimension_divisor(extent)
        divisor.append(extent if div == 1 and extent > 1 else div)
    return tuple(divisor)


@dataclass(frozen=True)
class BlockPartition:
    """An even partition of a DP-table into identical blocks.

    Attributes
    ----------
    geometry: the table being partitioned.
    divisor: segments per dimension; must divide each extent exactly.
    """

    geometry: TableGeometry
    divisor: tuple[int, ...]

    def __post_init__(self) -> None:
        divisor = tuple(int(a) for a in self.divisor)
        shape = self.geometry.shape
        if len(divisor) != len(shape):
            raise PartitionError(
                f"divisor {divisor} has wrong arity for shape {shape}"
            )
        for extent, a in zip(shape, divisor):
            if a < 1 or extent % a != 0:
                raise PartitionError(
                    f"divisor {divisor} does not evenly divide shape {shape}"
                )
        object.__setattr__(self, "divisor", divisor)

    # -- block geometry --------------------------------------------------------

    @property
    def block_shape(self) -> tuple[int, ...]:
        """Cells per block along each dimension (``block_size`` in Alg. 4)."""
        return tuple(e // a for e, a in zip(self.geometry.shape, self.divisor))

    @property
    def cells_per_block(self) -> int:
        """Number of cells in one block (``jobsPerBlock``)."""
        out = 1
        for b in self.block_shape:
            out *= b
        return out

    @property
    def num_blocks(self) -> int:
        """Total number of blocks (``prod(divisor)``)."""
        out = 1
        for a in self.divisor:
            out *= a
        return out

    @property
    def block_grid(self) -> TableGeometry:
        """The blocks themselves form a small table of shape ``divisor``."""
        return TableGeometry(self.divisor)

    @property
    def num_block_levels(self) -> int:
        """Number of block-levels (``#block_level`` in Alg. 4)."""
        return self.block_grid.max_level + 1

    @property
    def num_inblock_levels(self) -> int:
        """Anti-diagonal levels inside one block (Alg. 5 line 4)."""
        return sum(b - 1 for b in self.block_shape) + 1

    # -- cell <-> block maps ----------------------------------------------------

    def block_of_cell(self, cell: Sequence[int]) -> tuple[int, ...]:
        """Block coordinates containing ``cell`` (``floor(x_i / b_i)``)."""
        if not self.geometry.contains(cell):
            raise PartitionError(f"cell {tuple(cell)} outside table {self.geometry.shape}")
        return tuple(int(c) // b for c, b in zip(cell, self.block_shape))

    def inblock_coords(self, cell: Sequence[int]) -> tuple[int, ...]:
        """Cell coordinates relative to its block origin (``x_i mod b_i``)."""
        if not self.geometry.contains(cell):
            raise PartitionError(f"cell {tuple(cell)} outside table {self.geometry.shape}")
        return tuple(int(c) % b for c, b in zip(cell, self.block_shape))

    def block_level_of_cell(self, cell: Sequence[int]) -> int:
        """Block level (sum of block coordinates) of the cell's block."""
        return sum(self.block_of_cell(cell))

    def cells_of_block(self, block: Sequence[int]) -> np.ndarray:
        """All cell multi-indices of ``block`` as an ``(n, d)`` array.

        Cells come in row-major order of their in-block coordinates —
        the storage order after the Algorithm 4 memory reorganization.
        """
        block = tuple(int(b) for b in block)
        if not self.block_grid.contains(block):
            raise PartitionError(f"block {block} outside grid {self.divisor}")
        local = TableGeometry(self.block_shape).all_cells()
        origin = np.asarray(
            [b * s for b, s in zip(block, self.block_shape)], dtype=np.int64
        )
        return local + origin

    # -- vectorized whole-table maps ---------------------------------------------

    @cached_property
    def cell_block_ids(self) -> np.ndarray:
        """Flat block index (row-major over the grid) of every cell.

        Indexed by the cell's flat row-major table index; one vectorized
        pass over the whole table.
        """
        cells = self.geometry.all_cells()
        blocks = cells // np.asarray(self.block_shape, dtype=np.int64)
        return np.ravel_multi_index(tuple(blocks.T), self.divisor).astype(np.int64)

    @cached_property
    def cell_block_levels(self) -> np.ndarray:
        """Block level of every cell (flat table order)."""
        cells = self.geometry.all_cells()
        blocks = cells // np.asarray(self.block_shape, dtype=np.int64)
        return blocks.sum(axis=1)

    @cached_property
    def cell_inblock_levels(self) -> np.ndarray:
        """In-block anti-diagonal level of every cell (flat table order)."""
        cells = self.geometry.all_cells()
        rel = cells % np.asarray(self.block_shape, dtype=np.int64)
        return rel.sum(axis=1)

    # -- iteration ---------------------------------------------------------------

    def blocks_at_level(self, level: int) -> list[tuple[int, ...]]:
        """Block coordinate vectors on one block-level, lexicographic."""
        grid = self.block_grid
        if not (0 <= level <= grid.max_level):
            raise PartitionError(
                f"block level {level} out of range [0, {grid.max_level}]"
            )
        return [
            grid.unravel(int(f))
            for f in np.flatnonzero(grid.all_cells().sum(axis=1) == level)
        ]

    def iter_block_levels(self) -> Iterator[list[tuple[int, ...]]]:
        """Yield the block lists level by level (Alg. 4 lines 29–31)."""
        for level in range(self.num_block_levels):
            yield self.blocks_at_level(level)

    def stream_assignment(self, num_streams: int = 4) -> dict[tuple[int, ...], int]:
        """Cyclic distribution of same-level blocks over CUDA streams.

        Algorithm 4 line 31: blocks of one level go round-robin into
        ``num_streams`` streams so they execute concurrently.
        """
        if num_streams < 1:
            raise PartitionError(f"num_streams must be >= 1, got {num_streams}")
        out: dict[tuple[int, ...], int] = {}
        for level_blocks in self.iter_block_levels():
            for i, block in enumerate(level_blocks):
                out[block] = i % num_streams
        return out

    @staticmethod
    def from_counts(counts: Sequence[int], dim: int) -> "BlockPartition":
        """Partition for a job-count vector under the paper's ``dim`` setting."""
        geometry = TableGeometry.from_counts(counts)
        return BlockPartition(geometry, compute_divisor(geometry.shape, dim))
