"""Geometry of a dense row-major DP-table.

The DP-table for a count vector ``N = (n_1, ..., n_d)`` has shape
``(n_1+1, ..., n_d+1)`` and is stored row-major (C order), exactly as in
Algorithm 2 ("the i-th entry of DP-table in row-major order").
:class:`TableGeometry` centralises index arithmetic — flat↔multi
conversions, strides, bounds — so every consumer (wavefront iteration,
partitioning, the simulators' memory models) agrees on addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import DPError


@dataclass(frozen=True)
class TableGeometry:
    """Shape, strides, and index conversions for one DP-table."""

    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        shape = tuple(int(s) for s in self.shape)
        if any(s < 1 for s in shape):
            raise DPError(f"table extents must be >= 1, got {shape}")
        object.__setattr__(self, "shape", shape)

    @property
    def ndim(self) -> int:
        """Number of dimensions ``d``."""
        return len(self.shape)

    @property
    def size(self) -> int:
        """Total number of cells ``sigma = prod(extent_i)``."""
        out = 1
        for s in self.shape:
            out *= s
        return out

    @property
    def strides(self) -> tuple[int, ...]:
        """Row-major strides in *elements* (last dimension fastest)."""
        strides = [1] * self.ndim
        for i in range(self.ndim - 2, -1, -1):
            strides[i] = strides[i + 1] * self.shape[i + 1]
        return tuple(strides)

    @property
    def max_level(self) -> int:
        """Largest anti-diagonal level: ``sum(extent_i - 1)``."""
        return sum(s - 1 for s in self.shape)

    # -- conversions ----------------------------------------------------------

    def ravel(self, cell: Sequence[int]) -> int:
        """Multi-index → flat row-major index (bounds-checked)."""
        if len(cell) != self.ndim:
            raise DPError(f"cell {tuple(cell)} has wrong arity for shape {self.shape}")
        flat = 0
        for c, extent, stride in zip(cell, self.shape, self.strides):
            c = int(c)
            if not (0 <= c < extent):
                raise DPError(f"cell {tuple(cell)} out of bounds for shape {self.shape}")
            flat += c * stride
        return flat

    def unravel(self, flat: int) -> tuple[int, ...]:
        """Flat row-major index → multi-index (bounds-checked)."""
        flat = int(flat)
        if not (0 <= flat < self.size):
            raise DPError(f"flat index {flat} out of range [0, {self.size})")
        cell = []
        for stride in self.strides:
            cell.append(flat // stride)
            flat %= stride
        return tuple(cell)

    def all_cells(self) -> np.ndarray:
        """All multi-indices as a ``(size, ndim)`` int64 array in flat order.

        Vectorized ``unravel_index`` over the whole table — used by the
        partitioning layout and the simulators' work enumeration.
        """
        flat = np.arange(self.size, dtype=np.int64)
        coords = np.unravel_index(flat, self.shape)
        return np.stack(coords, axis=1).astype(np.int64)

    def iter_cells(self) -> Iterator[tuple[int, ...]]:
        """Yield every multi-index in flat (row-major) order."""
        for flat in range(self.size):
            yield self.unravel(flat)

    def contains(self, cell: Sequence[int]) -> bool:
        """Whether ``cell`` lies inside the table."""
        return len(cell) == self.ndim and all(
            0 <= int(c) < s for c, s in zip(cell, self.shape)
        )

    @staticmethod
    def from_counts(counts: Sequence[int]) -> "TableGeometry":
        """Geometry for a job-count vector ``N`` (extents ``n_i + 1``)."""
        return TableGeometry(tuple(int(c) + 1 for c in counts))
