"""The probe-plan IR: one structured execution plan per DP probe shape.

Every DP engine executes the same *structure* — anti-diagonal cell
levels (Algorithm 2), block partitions and per-(block-level,
in-block-level) kernel groups (Algorithms 4+5), per-cell work profiles
(Algorithm 5's ``candidates`` / ``#subconfig`` quantities) — and each
historically re-derived all of it per probe from scratch.  A
:class:`ProbePlan` is that structure computed **once** per
``(table shape, configuration set)`` and consumed everywhere:

* the five simulator engines (:mod:`repro.engines`) interpret a plan,
  keeping only their cost semantics (warp packing, stream assignment,
  launch overheads);
* the real host-parallel wavefront
  (:func:`repro.parallel.wavefront.parallel_wavefront_dp`) walks the
  *same* level schedule, so simulated and real execution provably use
  identical orders;
* :class:`repro.core.probe_cache.PlanCache` memoizes plans across the
  probes of a search and across the requests of a batch (quarter-split
  probes four targets per round that frequently round to one shape).

The plan is deliberately *value-like*: every array it exposes is marked
read-only, its layers are derived deterministically from
``(geometry, configs)``, and two probes with equal geometry and
configuration set may share one plan object freely (the DP values, the
schedules, and the work profiles are all functions of exactly that
pair — the scale-invariance argument of
:mod:`repro.core.probe_cache`, applied to execution structure).

Layers are built lazily and memoized on the plan, so a consumer that
never partitions (the CPU engines) never pays for the blocked layout,
while the partitioned GPU engine's ``blocked(dim)`` is shared by every
later probe that hits the same plan.  Build time flows to the ambient
tracer as ``plan.build_ms``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from functools import cached_property
from typing import Optional, Sequence

import numpy as np

from repro.dptable.antidiagonal import cell_levels
from repro.dptable.layout import BlockedLayout
from repro.dptable.partition import BlockPartition, compute_divisor
from repro.dptable.table import TableGeometry
from repro.errors import DPError
from repro.observability import context as obs


def _frozen(array: np.ndarray) -> np.ndarray:
    """Mark ``array`` read-only and return it (plans are immutable)."""
    array.setflags(write=False)
    return array


@dataclass(frozen=True)
class LevelSchedule:
    """The anti-diagonal wavefront order of one table (Algorithm 2).

    Attributes
    ----------
    levels:
        Level (coordinate sum) of every cell, flat row-major order.
    order:
        Level-major permutation of flat indices: all level-0 cells,
        then level 1, ... — ascending within each level.  This is the
        exact order :func:`repro.dptable.antidiagonal.wavefront`
        yields and the host-parallel wavefront dispatches.
    boundaries:
        ``order[boundaries[l]:boundaries[l+1]]`` is level ``l``;
        length ``num_levels + 1``.
    """

    levels: np.ndarray
    order: np.ndarray
    boundaries: np.ndarray

    @property
    def num_levels(self) -> int:
        """Number of anti-diagonal levels (``max_level + 1``)."""
        return int(self.boundaries.size - 1)

    @cached_property
    def sizes(self) -> np.ndarray:
        """Cells per level — the wavefront's concurrency profile."""
        return _frozen(np.diff(self.boundaries))

    def group(self, level: int) -> np.ndarray:
        """Flat indices of one level, ascending (a read-only view)."""
        if not (0 <= level < self.num_levels):
            raise DPError(
                f"level {level} out of range [0, {self.num_levels})"
            )
        return self.order[self.boundaries[level] : self.boundaries[level + 1]]

    def groups(self) -> tuple[np.ndarray, ...]:
        """Every level's cell group, level 0 first.

        The canonical topological execution order: passing these to
        :func:`repro.engines.base.fill_by_groups` reproduces the
        wavefront fill bit-for-bit.
        """
        return tuple(self.group(lvl) for lvl in range(self.num_levels))


@dataclass(frozen=True)
class KernelGroup:
    """One FindOPT kernel of the blocked schedule (Algorithm 5).

    ``cells`` are the flat table indices of one in-block anti-diagonal
    level of one block — the cells one kernel launch covers.
    """

    block_id: int
    inblock_level: int
    cells: np.ndarray


@dataclass(frozen=True)
class BlockedSchedule:
    """The two-level blocked execution structure (Algorithm 4 + 5).

    Attributes
    ----------
    partition: the even block partition for this plan's ``dim``.
    layout: the block-contiguous memory reorganization.
    by_block_level:
        Kernel groups per block-level, each level's kernels ordered by
        ``(block_id, inblock_level)`` — the launch order the
        partitioned GPU engine issues into its streams.
    """

    partition: BlockPartition
    layout: BlockedLayout
    by_block_level: tuple[tuple[KernelGroup, ...], ...]

    @cached_property
    def fill_groups(self) -> tuple[np.ndarray, ...]:
        """Dependency-safe cell groups for the blocked order.

        One group per ``(block-level, in-block-level)`` pair: the
        kernels of one block-level that share an in-block level are
        independent (their blocks are), so their cells merge into one
        group.  Passing these to ``fill_by_groups`` executes — and
        therefore certifies — the blocked schedule.
        """
        groups: list[np.ndarray] = []
        for level_kernels in self.by_block_level:
            per_inlevel: dict[int, list[np.ndarray]] = {}
            for kernel in level_kernels:
                per_inlevel.setdefault(kernel.inblock_level, []).append(
                    kernel.cells
                )
            for lvl in sorted(per_inlevel):
                groups.append(_frozen(np.concatenate(per_inlevel[lvl])))
        return tuple(groups)

    @property
    def num_kernels(self) -> int:
        """Total FindOPT launches (``num_blocks * num_inblock_levels``)."""
        return sum(len(level) for level in self.by_block_level)


class ProbePlan:
    """Everything shape-derived one DP probe needs, computed once.

    A plan is identified by ``(geometry, configs)`` — see
    :func:`plan_signature` for the normalized cache key — and exposes:

    * :attr:`level_schedule` / :meth:`level_groups` — the wavefront;
    * :attr:`candidates` / :attr:`valid` and the derived op counts —
      the per-cell work profile of Algorithm 5;
    * :meth:`partition` / :meth:`blocked` — the Algorithm 4 block
      structure for any ``dim``, memoized per ``dim``.

    Instances are immutable: all exposed arrays are read-only and all
    layers are pure functions of the constructor arguments, so one
    plan may serve any number of engines, probes, and threads.
    """

    def __init__(self, geometry: TableGeometry, configs: np.ndarray) -> None:
        if configs.ndim != 2:
            raise DPError("plan configs must be a 2-D array")
        if configs.shape[0] > 0 and configs.shape[1] != geometry.ndim:
            raise DPError(
                f"configs have {configs.shape[1]} components but the table "
                f"has {geometry.ndim} dims"
            )
        self.geometry = geometry
        if configs.flags.writeable:
            configs = configs.copy()
            configs.setflags(write=False)
        self.configs = configs
        self._partitions: dict[int, BlockPartition] = {}
        self._blocked: dict[int, BlockedSchedule] = {}

    # -- level schedule ------------------------------------------------------

    @cached_property
    def level_schedule(self) -> LevelSchedule:
        """The anti-diagonal wavefront schedule (built on first use)."""
        with _build_timer():
            if self.geometry.ndim == 0:
                # A 0-d table is the lone origin cell: one level of one.
                return LevelSchedule(
                    levels=_frozen(np.zeros(1, dtype=np.int64)),
                    order=_frozen(np.zeros(1, dtype=np.int64)),
                    boundaries=_frozen(np.array([0, 1], dtype=np.int64)),
                )
            levels = cell_levels(self.geometry)
            order = np.argsort(levels, kind="stable").astype(np.int64)
            boundaries = np.searchsorted(
                levels[order], np.arange(self.geometry.max_level + 2)
            )
            return LevelSchedule(
                levels=_frozen(levels),
                order=_frozen(order),
                boundaries=_frozen(boundaries),
            )

    def level_groups(self) -> tuple[np.ndarray, ...]:
        """Per-level cell groups — the serial/OpenMP/naive-GPU order."""
        return self.level_schedule.groups()

    @cached_property
    def relaxation_order(self) -> np.ndarray:
        """Config processing order for the relaxation kernels.

        Largest configurations first (stable on ties): they reach far
        cells in fewer rounds, accelerating convergence of the in-place
        propagation in :func:`repro.core.dp_vectorized.dp_vectorized`
        and the decision kernel.  Historically re-derived by an argsort
        on *every* probe; as a plan layer it is computed once per
        ``(shape, configs)`` and shared across all probes that hit the
        same plan.
        """
        with _build_timer():
            if self.configs.shape[0] == 0:
                return _frozen(np.zeros(0, dtype=np.int64))
            return _frozen(
                np.argsort(-self.configs.sum(axis=1), kind="stable").astype(
                    np.int64
                )
            )

    @cached_property
    def shift_slices(self) -> tuple:
        """Relaxation slice selectors, aligned with :attr:`relaxation_order`.

        The ``(dst, src)`` slice-tuple pairs every relaxation pass
        applies (see
        :func:`repro.core.dp_vectorized.shift_selectors`).  Building a
        tuple of slices per configuration is pure-Python work that used
        to run once per *round* per config; as a plan layer it runs
        once per ``(shape, configs)`` and is shared by every probe —
        and every relaxation round — that hits this plan.
        """
        with _build_timer():
            from repro.core.dp_vectorized import shift_selectors

            return shift_selectors(
                self.geometry.shape, self.configs, self.relaxation_order
            )

    # -- sparse (dominance-pruned) layers ------------------------------------

    @cached_property
    def sparse_configs(self) -> np.ndarray:
        """The dominance-pruned maximal subset of :attr:`configs`.

        Derived with the membership-based maximality test of
        :func:`repro.core.sparsify.maximal_mask` — a pure function of
        the configuration set alone, which keeps the layer valid under
        the plan's ``(geometry, configs)`` identity (the budget that
        generated the set never enters).  Sound because every
        enumerated set is downward closed; consumed by the clipped
        cover kernels (:mod:`repro.core.sparsify` has the argument).
        """
        with _build_timer():
            from repro.core.sparsify import sparsify_configurations

            sparse, _ = sparsify_configurations(self.configs)
            return sparse

    @cached_property
    def sparse_relaxation_order(self) -> np.ndarray:
        """Largest-first processing order over :attr:`sparse_configs`."""
        with _build_timer():
            if self.sparse_configs.shape[0] == 0:
                return _frozen(np.zeros(0, dtype=np.int64))
            return _frozen(
                np.argsort(
                    -self.sparse_configs.sum(axis=1), kind="stable"
                ).astype(np.int64)
            )

    @cached_property
    def sparse_shift_slices(self) -> tuple:
        """Box-pass selector pairs over the maximal subset.

        The ``(dst, src)`` pairs of
        :func:`repro.core.dp_vectorized.shift_selectors` built over
        :attr:`sparse_configs`, aligned with
        :attr:`sparse_relaxation_order` — built once per plan and
        shared by every sparse relaxation fill that hits it.  The
        sparse kernels pair these with per-round downward-closure
        sweeps (:func:`repro.core.dp_vectorized.run_closure_sweeps`)
        to realise the clipped cover recurrence.
        """
        with _build_timer():
            from repro.core.dp_vectorized import shift_selectors

            return shift_selectors(
                self.geometry.shape,
                self.sparse_configs,
                self.sparse_relaxation_order,
            )

    @cached_property
    def sparse_valid(self) -> np.ndarray:
        """Contributing maximal configurations per cell (sparse work profile).

        Under the clipped cover recurrence a maximal configuration
        contributes at cell ``u`` unless its support is disjoint from
        ``u``'s (then ``clip(u - c) == u`` and the pass is skipped), so
        the count is ``|C_max|`` minus the disjoint tally — computed by
        one small slab increment per configuration (the slab
        ``u_j = 0`` for every ``j`` in the support).  The engines
        charge their simulated sparse-mode work from this, mirroring
        :attr:`valid`.
        """
        with _build_timer():
            sparse = self.sparse_configs
            if self.geometry.ndim == 0:
                return _frozen(np.zeros(1, dtype=np.int64))
            disjoint = np.zeros(self.geometry.shape, dtype=np.int64)
            for cfg in sparse:
                sel = tuple(
                    slice(0, 1) if int(c) > 0 else slice(None) for c in cfg
                )
                disjoint[sel] += 1
            return _frozen(
                (int(sparse.shape[0]) - disjoint).reshape(-1)
            )

    @cached_property
    def total_sparse_valid(self) -> int:
        """Sum of sparse-mode work items over the whole table."""
        return int(self.sparse_valid.sum())

    # -- work profile --------------------------------------------------------

    @cached_property
    def candidates(self) -> np.ndarray:
        """FindValidSub enumeration size per cell: ``prod(v_i + 1)``."""
        with _build_timer():
            if self.geometry.ndim == 0:
                return _frozen(np.ones(1, dtype=np.int64))
            cells = self.geometry.all_cells()
            return _frozen(np.prod(cells + 1, axis=1, dtype=np.int64))

    @cached_property
    def valid(self) -> np.ndarray:
        """Applicable configurations per cell: ``#{c in C : c <= v}``.

        One slice-increment per configuration over a dense counter
        table — ``O(|C| * sigma)`` flat numpy work, and the single
        most expensive plan layer (which is why sharing plans across
        probes pays).
        """
        with _build_timer():
            table = np.zeros(self.geometry.shape, dtype=np.int64)
            for cfg in self.configs:
                view = table[tuple(slice(int(c), None) for c in cfg)]
                view += 1
            return _frozen(table.reshape(-1))

    @cached_property
    def total_candidates(self) -> int:
        """Sum of FindValidSub work over the whole table."""
        return int(self.candidates.sum())

    @cached_property
    def total_valid(self) -> int:
        """Sum of SetOPT work items over the whole table."""
        return int(self.valid.sum())

    def work_valid(self, sparsify: bool = False) -> np.ndarray:
        """The per-cell work profile a fill actually executes.

        :attr:`valid` for the dense fill, :attr:`sparse_valid` for the
        dominance-pruned one — the selector every engine threads its
        ``sparsify`` knob through so simulated time always reflects the
        configuration set that really ran.
        """
        return self.sparse_valid if sparsify else self.valid

    def thread_ops(self, costs, sparsify: bool = False) -> np.ndarray:
        """Per-cell compute ops *excluding* the locate scan.

        ``costs`` is any object with ``candidate_ops`` and
        ``setopt_ops`` attributes (a
        :class:`~repro.engines.costmodel.CostConstants`); the scan is
        charged separately because its scope and medium are engine
        decisions, not plan structure.  ``sparsify`` charges the
        dominance-pruned work profile instead of the dense one.
        """
        return (
            self.candidates.astype(np.float64) * costs.candidate_ops
            + self.work_valid(sparsify).astype(np.float64) * costs.setopt_ops
        )

    def scan_elements(self, scan_scope, sparsify: bool = False) -> np.ndarray:
        """Per-cell elements touched by locate scans.

        ``scan_scope`` is the storage size each scan walks (scalar for
        whole-table scans, or the block size after partitioning); the
        expected scan hits its target halfway through.
        """
        scope = np.asarray(scan_scope, dtype=np.float64)
        return self.work_valid(sparsify).astype(np.float64) * scope / 2.0

    # -- blocked structure ---------------------------------------------------

    def partition(self, dim: int) -> BlockPartition:
        """The Algorithm 4 block partition for ``dim`` cut dimensions.

        Cheap (divisor arithmetic only) and memoized per ``dim`` —
        the hybrid engine's cost predictor uses this without paying
        for the full blocked schedule.
        """
        dim = int(dim)
        if dim not in self._partitions:
            self._partitions[dim] = BlockPartition(
                self.geometry, compute_divisor(self.geometry.shape, dim)
            )
        return self._partitions[dim]

    def blocked(self, dim: int) -> BlockedSchedule:
        """The full blocked schedule for ``dim``, memoized per ``dim``.

        Builds the partition, the block-contiguous layout, and the
        per-(block-level, in-block-level) kernel groups with one
        lexsort over the table — the derivation that used to live
        privately inside the partitioned GPU engine.
        """
        dim = int(dim)
        if dim in self._blocked:
            return self._blocked[dim]
        with _build_timer():
            partition = self.partition(dim)
            layout = BlockedLayout(partition)

            block_ids = partition.cell_block_ids
            block_levels = partition.cell_block_levels
            inblock = partition.cell_inblock_levels

            n_in = partition.num_inblock_levels
            key = block_ids * n_in + inblock
            order = np.argsort(key, kind="stable")
            sorted_key = key[order]
            # Kernel boundaries: one kernel per distinct (block, in-level).
            starts = np.flatnonzero(
                np.concatenate([[True], sorted_key[1:] != sorted_key[:-1]])
            )
            stops = np.concatenate([starts[1:], [sorted_key.size]])

            by_level: list[list[KernelGroup]] = [
                [] for _ in range(partition.num_block_levels)
            ]
            for lo, hi in zip(starts, stops):
                cells = order[lo:hi]
                k = int(sorted_key[lo])
                bid, lvl = divmod(k, n_in)
                by_level[int(block_levels[cells[0]])].append(
                    KernelGroup(
                        block_id=bid, inblock_level=lvl, cells=_frozen(cells)
                    )
                )
            schedule = BlockedSchedule(
                partition=partition,
                layout=layout,
                by_block_level=tuple(tuple(level) for level in by_level),
            )
        self._blocked[dim] = schedule
        return schedule

    # -- identity ------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"ProbePlan(shape={self.geometry.shape}, "
            f"|C|={self.configs.shape[0]})"
        )


class _build_timer:
    """Context manager charging elapsed build time as ``plan.build_ms``."""

    def __enter__(self) -> "_build_timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed_ms = (time.perf_counter() - self._start) * 1e3
        obs.count("plan.build_ms", elapsed_ms)
        _note_build_ms(elapsed_ms)


#: Running total of plan-layer build milliseconds in this process —
#: consumed by PlanCache instances to attribute build cost without
#: requiring an active tracer (benchmarks read it directly).
_BUILD_MS_TOTAL: list[float] = [0.0]


def _note_build_ms(elapsed_ms: float) -> None:
    _BUILD_MS_TOTAL[0] += elapsed_ms


def total_build_ms() -> float:
    """Plan-layer build milliseconds accumulated in this process."""
    return _BUILD_MS_TOTAL[0]


def plan_signature(
    counts: Sequence[int],
    class_sizes: Sequence[int],
    target: int,
    model_token: Optional[tuple] = None,
) -> tuple:
    """Scale-invariant identity of a probe's plan.

    The plan depends only on the table shape and the configuration
    set, and a configuration ``s`` is feasible iff
    ``sum_i s_i * size_i <= T`` — dividing through by
    ``g = gcd(class_sizes)`` leaves feasibility unchanged
    (``sum s_i (size_i/g) <= floor(T/g)`` because the left side is an
    integer).  Probes at different absolute targets whose sizes are a
    common rescaling therefore share one plan — the same collision
    the normalized probe key of :mod:`repro.core.probe_cache`
    exploits, frequently hit by the quarter split's four same-round
    targets.

    ``model_token`` discriminates machine models whose configuration
    sets are *filtered* rather than budget-defined (the
    ``time-restricted`` model's job-count cap): a filtered plan must
    never alias the unfiltered plan for the same shape/budget.
    ``None`` — every pre-model caller — leaves signatures bit-identical
    to the historical four-element form.
    """
    counts = tuple(int(c) for c in counts)
    sizes = tuple(int(s) for s in class_sizes)
    if len(counts) != len(sizes):
        raise DPError("counts and class_sizes must have equal length")
    if not sizes:
        base = ("norm", counts, (), 0)
    else:
        g = math.gcd(*sizes)
        base = (
            "norm",
            counts,
            tuple(s // g for s in sizes),
            int(target) // g,
        )
    if model_token is None:
        return base
    return base + (tuple(model_token),)


def configs_signature(geometry: TableGeometry, configs: np.ndarray) -> tuple:
    """Exact plan identity when the configuration set is already known."""
    return ("cfg", geometry.shape, configs.shape, configs.tobytes())


def build_probe_plan(
    counts: Sequence[int],
    class_sizes: Sequence[int],
    target: int,
    configs: Optional[np.ndarray] = None,
    eager: bool = True,
    sparsify: bool = False,
) -> ProbePlan:
    """Construct a plan for one probe, enumerating configurations if needed.

    With ``eager=True`` (the engine default) the level schedule and
    work profile are built immediately — every engine touches them, so
    the cost is paid (and measured) here, on the cache's miss path,
    not on first use.  The relaxation kernels only need the cheap
    :attr:`~ProbePlan.relaxation_order` layer and pass ``eager=False``
    to keep the expensive layers lazy.  The blocked structure stays
    lazy per ``dim`` either way.  ``sparsify=True`` additionally
    eager-builds the dominance-pruned layers
    (:attr:`~ProbePlan.sparse_configs` /
    :attr:`~ProbePlan.sparse_valid`) a sparse consumer will touch.
    Prefer :class:`repro.core.probe_cache.PlanCache` — this builder is
    the miss path.
    """
    counts = tuple(int(c) for c in counts)
    if len(counts) != len(class_sizes):
        raise DPError("counts and class_sizes must have equal length")
    geometry = TableGeometry.from_counts(counts)
    if configs is None:
        from repro.core.configs import enumerate_configurations

        configs = enumerate_configurations(class_sizes, counts, target)
    plan = ProbePlan(geometry, configs)
    if eager:
        plan.level_schedule
        plan.candidates
        if sparsify:
            plan.sparse_configs
            plan.sparse_valid
        else:
            plan.valid
    return plan
