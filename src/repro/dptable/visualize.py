"""ASCII visualisation of tables, wavefronts, and partitions.

Renders the structures the paper illustrates in Figures 1 and 2 for
*any* 2-D table (and 2-D slices of higher-dimensional ones):

* :func:`render_levels` — each cell labelled with its anti-diagonal
  level (Fig. 1's wavefront);
* :func:`render_partition` — each cell labelled with its block-level
  (Fig. 2's colours), block boundaries drawn as separators.

Used by the docs and handy when debugging a custom divisor.
"""

from __future__ import annotations

from typing import Sequence

from repro.dptable.partition import BlockPartition
from repro.dptable.table import TableGeometry
from repro.errors import PartitionError


def _check_2d(shape: Sequence[int]) -> tuple[int, int]:
    if len(shape) != 2:
        raise PartitionError(
            f"visualisation renders 2-D tables; got shape {tuple(shape)} "
            "(take a 2-D slice of higher-dimensional tables)"
        )
    return int(shape[0]), int(shape[1])


def render_levels(geometry: TableGeometry) -> str:
    """Grid of anti-diagonal levels: cell (i, j) shows ``i + j``.

    Cells sharing a label are independent and run concurrently —
    the Fig. 1 wavefront.
    """
    rows, cols = _check_2d(geometry.shape)
    width = len(str(rows + cols - 2))
    lines = []
    for i in range(rows):
        lines.append(" ".join(str(i + j).rjust(width) for j in range(cols)))
    return "\n".join(lines)


def render_partition(partition: BlockPartition) -> str:
    """Grid of block-levels with block boundaries, Fig. 2 style.

    Cell (i, j) shows the block-level of its block; ``|`` and rows of
    ``-`` mark the block boundaries produced by the divisor.
    """
    rows, cols = _check_2d(partition.geometry.shape)
    br, bc = partition.block_shape
    width = max(1, len(str(partition.num_block_levels - 1)))
    lines = []
    for i in range(rows):
        if i > 0 and i % br == 0:
            # A separator row across all columns incl. the '|' gaps.
            n_seps = (cols - 1) // bc
            lines.append("-" * (cols * (width + 1) - 1 + 2 * n_seps))
        cells = []
        for j in range(cols):
            if j > 0 and j % bc == 0:
                cells.append("|")
            level = (i // br) + (j // bc)
            cells.append(str(level).rjust(width))
        lines.append(" ".join(cells))
    return "\n".join(lines)


def render_stream_map(partition: BlockPartition, num_streams: int = 4) -> str:
    """Grid of stream assignments per block (cyclic, Alg. 4 line 31)."""
    rows, cols = _check_2d(partition.geometry.shape)
    br, bc = partition.block_shape
    streams = partition.stream_assignment(num_streams)
    lines = []
    for i in range(rows):
        if i > 0 and i % br == 0:
            n_seps = (cols - 1) // bc
            lines.append("-" * (cols * 2 - 1 + 2 * n_seps))
        cells = []
        for j in range(cols):
            if j > 0 and j % bc == 0:
                cells.append("|")
            cells.append(str(streams[(i // br, j // bc)]))
        lines.append(" ".join(cells))
    return "\n".join(lines)
