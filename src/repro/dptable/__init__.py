"""High-dimensional DP-table machinery: geometry, wavefronts, partitioning.

This package is the heart of the paper's contribution — everything
needed to (a) walk a high-dimensional table in anti-diagonal wavefronts
(Algorithm 2) and (b) cut it into equal blocks with a divisor vector and
re-lay memory block-contiguously (Algorithm 4), which is what makes the
GPU mapping efficient.
"""

from repro.dptable.table import TableGeometry
from repro.dptable.antidiagonal import (
    cell_levels,
    level_sizes,
    cells_at_level,
    wavefront,
)
from repro.dptable.partition import (
    dimension_divisor,
    compute_divisor,
    BlockPartition,
)
from repro.dptable.layout import BlockedLayout
from repro.dptable.plan import (
    BlockedSchedule,
    KernelGroup,
    LevelSchedule,
    ProbePlan,
    build_probe_plan,
    configs_signature,
    plan_signature,
)
from repro.dptable.visualize import render_levels, render_partition, render_stream_map

__all__ = [
    "TableGeometry",
    "cell_levels",
    "level_sizes",
    "cells_at_level",
    "wavefront",
    "dimension_divisor",
    "compute_divisor",
    "BlockPartition",
    "BlockedLayout",
    "ProbePlan",
    "LevelSchedule",
    "BlockedSchedule",
    "KernelGroup",
    "build_probe_plan",
    "plan_signature",
    "configs_signature",
    "render_levels",
    "render_partition",
    "render_stream_map",
]
