"""Setuptools shim.

The execution environment has no network and no ``wheel`` package, so
PEP 660 editable installs (``pip install -e .`` with build isolation)
cannot build.  This shim lets ``python setup.py develop`` /
``pip install -e . --no-build-isolation`` fall back to the legacy
editable path.  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
