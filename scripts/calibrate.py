"""Calibration sweep: simulated engine times across DP-table sizes.

Not part of the library — a development tool that reports the shape
targets from the paper so the constants in
:mod:`repro.engines.costmodel`, :mod:`repro.gpusim.spec`, and
:mod:`repro.cpusim.spec` can be frozen.  Run:  python scripts/calibrate.py
"""


import numpy as np

from repro.core import uniform_instance
from repro.core.rounding import round_instance
from repro.engines import (
    GpuNaiveEngine,
    GpuPartitionedEngine,
    OpenMPEngine,
)


def probe_for_size(target_size: int, seed: int):
    """Find a rounded instance whose table size is near target_size."""
    rng = np.random.default_rng(seed)
    best = None
    for _ in range(200):
        n = int(rng.integers(20, 120))
        m = int(rng.integers(4, 24))
        inst = uniform_instance(n, m, low=5, high=100, seed=int(rng.integers(1 << 31)))
        from repro.core.bounds import makespan_bounds

        b = makespan_bounds(inst)
        t = int(rng.integers(b.lower, b.upper + 1))
        r = round_instance(inst, t, 0.3)
        if r.dims == 0:
            continue
        err = abs(r.table_size - target_size) / target_size
        if best is None or err < best[0]:
            best = (err, r)
        if err < 0.15:
            break
    return best[1]


def main():
    sizes = [500, 2000, 8000, 15000, 30000, 60000, 120000, 250000, 450000]
    engines = {
        "omp16": lambda: OpenMPEngine(16),
        "omp28": lambda: OpenMPEngine(28),
        "dim3": lambda: GpuPartitionedEngine(dim=3),
        "dim6": lambda: GpuPartitionedEngine(dim=6),
        "dim9": lambda: GpuPartitionedEngine(dim=9),
        "naive": lambda: GpuNaiveEngine(check_memory=False),
    }
    header = f"{'size':>8} {'dims':>4} " + " ".join(f"{k:>12}" for k in engines)
    print(header)
    for size in sizes:
        r = probe_for_size(size, seed=size)
        row = [f"{r.table_size:>8} {r.dims:>4}"]
        for key, make in engines.items():
            if key == "naive" and r.table_size > 150000:
                row.append(f"{'skip':>12}")
                continue
            eng = make()
            run = eng.run(r.counts, r.class_sizes, r.target)
            row.append(f"{run.simulated_s:>12.4f}")
        print(" ".join(row), flush=True)


if __name__ == "__main__":
    main()
