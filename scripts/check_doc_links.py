#!/usr/bin/env python3
"""Verify that the documentation's cross-references resolve.

Checks, across README.md / DESIGN.md / EXPERIMENTS.md / docs/*.md /
benchmarks & examples READMEs:

* every markdown link target (``[text](target)``) that is not an
  external URL or a pure anchor points at an existing file/directory;
* every backticked repo path (contains a ``/`` and a known extension,
  e.g. ``benchmarks/results/fig3.txt`` or
  ``benchmarks/test_bench_fig4.py::test_x``) exists;
* every backticked ``tests/...`` or ``benchmarks/...`` pytest node id
  names a real file.

Run from the repository root (CI does)::

    python scripts/check_doc_links.py

Exit code 0 when everything resolves, 1 otherwise (offenders listed).
No third-party dependencies.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

# ISSUE.md is a scratch work-ticket, not shipped documentation.
SKIP = {"ISSUE.md"}

# Shipped documentation that must exist (a rename or deletion should
# fail this check, not silently shrink the scanned set).
REQUIRED_DOCS = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "docs/API.md",
    "docs/MODELS.md",
    "docs/PERFORMANCE.md",
    "docs/RELIABILITY.md",
    "docs/SERVICE.md",
    "docs/SIMULATOR.md",
    "docs/THEORY.md",
)

DOC_FILES = sorted(
    path
    for path in [
        *ROOT.glob("*.md"),
        *(ROOT / "docs").glob("*.md"),
        *(ROOT / "benchmarks").glob("*.md"),
        *(ROOT / "examples").glob("*.md"),
    ]
    if path.name not in SKIP
)

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_PATH = re.compile(r"`([A-Za-z0-9_./-]+/[A-Za-z0-9_.-]+\.(?:py|md|txt|sh|toml|yml|json))(?:::[A-Za-z0-9_.:]+)?`")

EXTERNAL = ("http://", "https://", "mailto:")

# Result files are build artifacts of the *full* bench run; reduced
# variants may be absent in a fresh checkout, so only warn about the
# canonical names the docs quote.
GENERATED_OK = re.compile(r"benchmarks/results/.*-reduced\.txt$")


def targets_in(path: Path):
    text = path.read_text(encoding="utf-8")
    for match in MD_LINK.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        yield target.split("#", 1)[0]
    for match in CODE_PATH.finditer(text):
        yield match.group(1)


def main() -> int:
    missing = [doc for doc in REQUIRED_DOCS if not (ROOT / doc).is_file()]
    if missing:
        print(f"{len(missing)} required doc(s) missing:")
        for doc in missing:
            print(f"  {doc}")
        return 1
    broken: list[tuple[Path, str]] = []
    checked = 0
    for doc in DOC_FILES:
        for target in targets_in(doc):
            checked += 1
            resolved = (doc.parent / target).resolve()
            in_repo = (ROOT / target).resolve()
            if resolved.exists() or in_repo.exists():
                continue
            if GENERATED_OK.search(target):
                continue
            broken.append((doc, target))
    if broken:
        print(f"{len(broken)} broken reference(s) (of {checked} checked):")
        for doc, target in broken:
            print(f"  {doc.relative_to(ROOT)}: {target}")
        return 1
    print(f"ok: {checked} references across {len(DOC_FILES)} docs all resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
