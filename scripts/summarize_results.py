"""Summarise benchmarks/results/*.txt into the EXPERIMENTS.md headlines.

Development tool: after a full bench run, prints the handful of numbers
EXPERIMENTS.md quotes (crossover, large-table factors, Fig. 4 best
dims, Table VII rows, naive slowdowns) so the document can be checked
against the artifacts at a glance.  Run:  python scripts/summarize_results.py
"""

from __future__ import annotations

import re
from pathlib import Path

RESULTS = Path(__file__).parent.parent / "benchmarks" / "results"


def _read(name: str) -> str | None:
    path = RESULTS / name
    return path.read_text() if path.exists() else None


def fig3() -> None:
    text = _read("fig3.txt")
    if not text:
        return
    print("== fig3 ==")
    match = re.search(r"crossover size: (\S+)", text)
    if match:
        print(f"  crossover: {match.group(1)}")
    # Per-size best GPU vs OMP28 for the largest sizes.
    rows: dict[int, dict[str, float]] = {}
    for m in re.finditer(
        r"^\s*(\d+)\s+\d+\s+(\S+)\s+([\d.e+-]+)\s*$", text, re.MULTILINE
    ):
        size, engine, sim = int(m.group(1)), m.group(2), float(m.group(3))
        rows.setdefault(size, {})[engine] = sim
    for size in sorted(rows)[-6:]:
        times = rows[size]
        if "omp28" not in times:
            continue
        gpu_best = min(
            ((t, e) for e, t in times.items() if e.startswith("gpu")), default=None
        )
        if gpu_best:
            t, e = gpu_best
            dim = e.replace("gpu-dim", "DIM")
            size_str = f"{size:,}".replace(",", " ")
            print(
                f"  | {size_str} | {times['omp28']:.3g} | {t:.3g} ({dim}) | "
                f"{times['omp28'] / t:.1f}x |"
            )


def fig4() -> None:
    text = _read("fig4.txt")
    if not text:
        return
    print("== fig4 best dims ==")
    for m in re.finditer(
        r"size (\d+), (\d+) non-zero dims: best GPU-DIM(\d+) "
        r"\(paper best column: GPU-DIM(\d+)\)",
        text,
    ):
        print(
            f"  size {m.group(1)} dims {m.group(2)}: "
            f"ours DIM{m.group(3)} vs paper DIM{m.group(4)}"
        )


def table7() -> None:
    text = _read("table_vii.txt")
    if not text:
        return
    print("== table VII ==")
    for line in text.splitlines():
        if re.match(r"^\s*\d+\s+\d+", line):
            print("  " + line.strip())


def ablation_naive() -> None:
    text = _read("ablation_naive.txt")
    if not text:
        return
    print("== naive slowdowns ==")
    for m in re.finditer(r"([\d.]+)\s*$", text, re.MULTILINE):
        pass
    rows = [
        line.strip().split()
        for line in text.splitlines()
        if re.match(r"^\s*\d+\s", line)
    ]
    for row in rows:
        print(f"  size {row[0]}: {row[-1]}x")


def tables_i_vi() -> None:
    text = _read("tables_i_vi.txt")
    if not text:
        return
    match = re.search(r"(\d+)/(\d+) rows reproduce", text)
    if match:
        print(f"== tables I-VI: {match.group(0)} ==")


def main() -> None:
    fig3()
    fig4()
    table7()
    ablation_naive()
    tables_i_vi()


if __name__ == "__main__":
    main()
