#!/usr/bin/env bash
# Full verification pipeline for the reproduction.
#
#   scripts/run_all.sh           # tests + reduced benches (~5 min)
#   scripts/run_all.sh --full    # tests + paper-scale benches (~1 h)
#
# Artifacts: test_output.txt, bench_output.txt at the repo root, and
# the regenerated exhibits under benchmarks/results/.

set -euo pipefail
cd "$(dirname "$0")/.."

FULL=""
if [[ "${1:-}" == "--full" ]]; then
    FULL=1
fi

echo "== installing (editable) =="
pip install -e . --no-build-isolation -q || python setup.py develop

echo "== unit / integration / property tests =="
python -m pytest tests/ 2>&1 | tee test_output.txt

echo "== benchmark harness (exhibit regeneration) =="
if [[ -n "$FULL" ]]; then
    REPRO_BENCH_FULL=1 python -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt
else
    python -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt
fi

echo "== exhibits written to benchmarks/results/ =="
echo "   (reduced runs write <name>-reduced.txt; full runs own <name>.txt)"
ls benchmarks/results/
