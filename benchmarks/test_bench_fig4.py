"""Fig. 4 — number of non-zero dimensions vs GPU performance.

For the paper's six showcased table sizes (shapes straight from
Tables I–VI), run every GPU-DIM3..9 setting and chart simulated time
against the partition-dimension setting, one series per table
dimensionality.  Reduced mode runs the three small sizes; full mode all
six (the 362880/403200 shapes cost minutes).

Output: ``benchmarks/results/fig4.txt``.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import fig4
from repro.analysis.paper_data import FIG4_SIZES, GPU_DIMS, TABLES_I_TO_VI
from repro.analysis.report import ascii_plot


@pytest.mark.benchmark(group="fig4")
def test_fig4_dimensionality_effect(benchmark, full, save_report):
    sizes = tuple(FIG4_SIZES) if full else (3456, 8640, 12960)

    result = benchmark.pedantic(
        fig4.run,
        kwargs=dict(sizes=sizes, dims_settings=tuple(GPU_DIMS)),
        rounds=1,
        iterations=1,
    )

    sections = [result.description, ""]
    best_dims: list[tuple[int, int]] = []  # (n_dims, best setting)
    for size in sizes:
        rows = [r for r in result.rows if r["table_size"] == size]
        series: dict[str, list[tuple[float, float]]] = {}
        for r in rows:
            series.setdefault(f"{r['n_dims']}dims", []).append(
                (float(r["partition_dim"]), float(r["simulated_s"]))
            )
        sections.append(
            ascii_plot(
                series,
                title=f"Fig. 4, table size {size}",
                xlabel="partitioned dimensions (GPU-DIMx)",
                ylabel="simulated seconds",
                logx=False,
            )
        )
        sections.append("")
        for paper_row in TABLES_I_TO_VI[size]:
            best = fig4.best_partition_dim(result, size, paper_row.n_dims)
            best_dims.append((paper_row.n_dims, best))
            sections.append(
                f"size {size}, {paper_row.n_dims} non-zero dims: best GPU-DIM{best} "
                f"(paper best column: GPU-DIM{paper_row.best_dim})"
            )
        sections.append("")
    sections.append(
        "paper: best performance obtained when partitioning along 5-7 "
        "dimensions; GPU-DIM3 the weakest setting"
    )
    save_report("fig4", "\n".join(sections))

    benchmark.extra_info["best_dims"] = best_dims

    # Shape assertions: for genuinely high-dimensional tables (>= 5
    # non-zero dims) the optimum is interior (4-7) and never DIM3; a
    # 4-dim table has nothing to gain beyond DIM4, so all settings
    # coincide there (the paper notes such low-dim exceptions).
    high = [(n, b) for n, b in best_dims if n >= 5]
    assert all(b != 3 for _, b in high), f"GPU-DIM3 best on a high-dim shape: {high}"
    interior = sum(1 for _, b in high if 4 <= b <= 7)
    assert interior >= len(high) - 1, "optimum must sit at 4-7 dims"
