"""Host-parallel fill benchmark: the fill fabric vs the serial kernel.

One Table-I-scale probe plan, filled three ways — the serial
:func:`~repro.engines.base.fill_by_groups` group walk, and the
:class:`~repro.parallel.fabric.BlockExecutor` at 2 and 4 workers —
emitting ``benchmarks/results/BENCH_hostpar_fill.json``:

* **bit-identity** — every arm must produce the identical table
  (asserted unconditionally: the fabric is only correct if it is
  invisible in results), and a PTAS run on the ``hostpar-2`` backend
  must report the same makespan as ``auto``.
* **fill speedup** — median wall time per arm.  The >= 2x floor at 4
  workers is asserted only when the runner actually exposes >= 4 CPUs
  (a single-core runner measures dispatch overhead, not parallelism;
  the JSON still records the measured ratios either way).
* **hygiene** — zero SharedMemory segments left in ``/dev/shm`` after
  the executors close.

Run: ``pytest benchmarks/test_bench_hostpar_fill.py --benchmark-only``
(``REPRO_BENCH_FULL=1`` for the paper-scale workload).
"""

from __future__ import annotations

import json
import os
import statistics
import time

import numpy as np
import pytest

from repro.backends import resolve
from repro.core.instance import uniform_instance
from repro.core.ptas import ptas_schedule
from repro.dptable.plan import build_probe_plan
from repro.engines.base import fill_by_groups
from repro.parallel.fabric import BlockExecutor

RESULTS_NAME = "BENCH_hostpar_fill.json"

#: Worker counts benchmarked against the serial arm.
WORKER_ARMS = (2, 4)


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _shm_segments() -> set:
    try:
        return set(os.listdir("/dev/shm"))
    except OSError:  # platform without a visible shm mount
        return set()


def _workload(full: bool):
    if full:
        return (30, 24, 18), (3, 5, 7), 55, 3
    return (20, 16, 12), (3, 5, 7), 40, 2


@pytest.mark.benchmark(group="hostpar-fill")
def test_fabric_fill_speedup(benchmark, results_dir, full):
    counts, sizes, target, repeats = _workload(full)
    plan = build_probe_plan(counts, sizes, target)
    cores = _available_cores()
    shm_before = _shm_segments()

    def measure():
        times = {"serial": []}
        for _ in range(repeats):
            start = time.perf_counter()
            serial_table = fill_by_groups(
                plan.geometry, plan.configs, plan.level_groups()
            )
            times["serial"].append(time.perf_counter() - start)
        serial_flat = np.asarray(serial_table).ravel()
        tables = {}
        for workers in WORKER_ARMS:
            label = f"fabric-{workers}"
            times[label] = []
            with BlockExecutor(workers=workers) as fabric:
                fabric.fill(plan)  # warm: ship the plan, start the pool
                for _ in range(repeats):
                    start = time.perf_counter()
                    tables[label] = fabric.fill(plan)
                    times[label].append(time.perf_counter() - start)
        return serial_flat, tables, times

    serial_flat, tables, times = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Bit-identity is unconditional: the fabric must be invisible.
    for label, flat in tables.items():
        assert np.array_equal(flat, serial_flat), f"{label} diverged from serial"

    medians = {label: statistics.median(t) for label, t in times.items()}
    speedups = {
        label: medians["serial"] / medians[label]
        for label in medians
        if label != "serial"
    }

    # End-to-end identity: hostpar answers exactly what auto answers.
    inst = uniform_instance(24, 3, low=5, high=95, seed=11)
    auto_makespan = ptas_schedule(inst, eps=0.2, dp_solver=resolve("auto")).makespan
    hostpar_makespan = ptas_schedule(
        inst, eps=0.2, dp_solver=resolve("hostpar-2")
    ).makespan
    from repro.parallel.fabric import shutdown_fabrics

    shutdown_fabrics()
    assert hostpar_makespan == auto_makespan

    leaked = sorted(_shm_segments() - shm_before)
    assert leaked == [], f"leaked SharedMemory segments: {leaked}"

    payload = {
        "benchmark": "hostpar_fill",
        "mode": "full" if full else "reduced",
        "workload": {
            "counts": list(counts),
            "class_sizes": list(sizes),
            "target": target,
            "cells": int(plan.geometry.size),
            "configs": int(plan.configs.shape[0]),
            "repeats": repeats,
        },
        "cores": cores,
        "median_ms": {k: v * 1e3 for k, v in medians.items()},
        "speedup_vs_serial": speedups,
        "makespans": {"auto": auto_makespan, "hostpar-2": hostpar_makespan},
        "leaked_segments": leaked,
    }
    path = results_dir / RESULTS_NAME
    path.write_text(json.dumps(payload, indent=2) + "\n")

    benchmark.extra_info.update(
        {"cores": cores, **{f"speedup_{k}": round(v, 3) for k, v in speedups.items()}}
    )

    # The parallel-speedup floor only means something on parallel
    # hardware; a 1-core runner can only measure dispatch overhead.
    if cores >= 4:
        assert speedups["fabric-4"] >= 2.0, (
            f"expected >= 2x fill speedup at 4 workers on {cores} cores, "
            f"got {speedups['fabric-4']:.2f}x"
        )
