"""Fabric recovery benchmark: what self-healing costs when nothing fails.

The PR-10 supervision machinery (supervised dispatch, per-wave cell
claims, the post-fill integrity pass, the orphan-reaper sweep at pool
start) must be close to free on the healthy path — the whole bench
exists to hold that line.  One Table-I-scale probe plan, four arms,
emitting ``benchmarks/results/BENCH_fabric_recovery.json``:

* **fault-free overhead** — the fully supervised single-worker fabric
  (inline fills, but every claim/verify/reap pass on) vs the raw
  serial :func:`~repro.engines.base.fill_by_groups` kernel, measured
  interleaved.  Asserted: best-of overhead <= 5%.
* **recovery latency** — one real SIGKILL pinned to a mid-fill wave
  (``fabric.worker`` chaos site), vs the same dispatched fill with no
  faults.  Recorded, and the recovered table is asserted bit-identical
  to serial.
* **hygiene** — zero ``/dev/shm`` segments survive, kills included.

Run: ``pytest benchmarks/test_bench_fabric_recovery.py --benchmark-only``
(``REPRO_BENCH_FULL=1`` for the paper-scale workload).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.dptable.plan import build_probe_plan
from repro.engines.base import fill_by_groups
from repro.parallel.fabric import BlockExecutor
from repro.resilience import FaultInjector

RESULTS_NAME = "BENCH_fabric_recovery.json"

#: Healthy-path overhead ceiling (asserted): supervision may cost at
#: most this factor over the raw serial kernel.
OVERHEAD_CEILING = 1.05

#: The wave the chaos arm SIGKILLs a worker in (must dispatch, hence
#: min_parallel_cells=1 on the dispatched arms).
KILL_WAVE = 3


def _shm_segments() -> set:
    try:
        return set(os.listdir("/dev/shm"))
    except OSError:  # platform without a visible shm mount
        return set()


def _workload(full: bool):
    if full:
        return (30, 24, 18), (3, 5, 7), 55, 3
    return (20, 16, 12), (3, 5, 7), 40, 5


@pytest.mark.benchmark(group="fabric-recovery")
def test_fabric_recovery_overhead(benchmark, results_dir, full):
    counts, sizes, target, repeats = _workload(full)
    plan = build_probe_plan(counts, sizes, target)
    shm_before = _shm_segments()

    def measure():
        # --- fault-free overhead: serial kernel vs supervised fabric-1,
        # interleaved so machine noise hits both arms alike.
        times = {"serial": [], "fabric-1": []}
        serial_flat = None
        with BlockExecutor(workers=1) as fabric:
            fabric.fill(plan)  # warm: ship the plan once
            fill_by_groups(plan.geometry, plan.configs, plan.level_groups())
            for _ in range(repeats):
                start = time.perf_counter()
                serial_table = fill_by_groups(
                    plan.geometry, plan.configs, plan.level_groups()
                )
                times["serial"].append(time.perf_counter() - start)
                start = time.perf_counter()
                supervised = fabric.fill(plan)
                times["fabric-1"].append(time.perf_counter() - start)
            serial_flat = np.asarray(serial_table).ravel()
            assert np.array_equal(supervised, serial_flat)

        # --- recovery latency: a dispatched fill with one pinned kill
        # vs the same dispatched fill with no faults.
        times["fabric-2"] = []
        with BlockExecutor(workers=2) as fabric:
            fabric.fill(plan, min_parallel_cells=1)  # warm pool + plan
            for _ in range(repeats):
                start = time.perf_counter()
                dispatched = fabric.fill(plan, min_parallel_cells=1)
                times["fabric-2"].append(time.perf_counter() - start)
        assert np.array_equal(dispatched, serial_flat)

        # max_failures caps per wave key: 2 budgets one kill for the
        # warm fill and one for the timed fill below.
        injector = FaultInjector(
            seed=13,
            rate=1.0,
            kinds=("crash",),
            sites=("fabric.worker",),
            max_failures=2,
            match=lambda site, inst, wave: wave == KILL_WAVE,
        )
        with BlockExecutor(workers=2, faults=injector) as fabric:
            fabric.fill(plan, min_parallel_cells=1)  # warm (kill included)
            start = time.perf_counter()
            recovered = fabric.fill(plan, min_parallel_cells=1)
            recovery_s = time.perf_counter() - start
            health = fabric.health().as_dict()
        return serial_flat, recovered, times, recovery_s, health

    serial_flat, recovered, times, recovery_s, health = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    # Recovery is only recovery if the table is untouched by the kill.
    assert np.array_equal(recovered, serial_flat), "recovered fill diverged"
    assert health.get("workers_killed", 0) >= 2, (
        "chaos arm failed to deliver a kill inside the timed fill"
    )

    # Best-of estimates: the standard low-noise statistic for a shared,
    # single-core CI runner.
    best = {label: min(t) for label, t in times.items()}
    overhead = best["fabric-1"] / best["serial"]
    recovery_overhead_ms = (recovery_s - best["fabric-2"]) * 1e3

    leaked = sorted(_shm_segments() - shm_before)
    assert leaked == [], f"leaked SharedMemory segments: {leaked}"

    payload = {
        "benchmark": "fabric_recovery",
        "mode": "full" if full else "reduced",
        "workload": {
            "counts": list(counts),
            "class_sizes": list(sizes),
            "target": target,
            "cells": int(plan.geometry.size),
            "configs": int(plan.configs.shape[0]),
            "repeats": repeats,
        },
        "best_ms": {k: v * 1e3 for k, v in best.items()},
        "fault_free_overhead": overhead,
        "overhead_ceiling": OVERHEAD_CEILING,
        "kill_wave": KILL_WAVE,
        "recovery_fill_ms": recovery_s * 1e3,
        "recovery_overhead_ms": recovery_overhead_ms,
        "recovered_bit_identical": True,
        "fabric_health": health,
        "leaked_segments": leaked,
    }
    path = results_dir / RESULTS_NAME
    path.write_text(json.dumps(payload, indent=2) + "\n")

    benchmark.extra_info.update(
        {
            "fault_free_overhead": round(overhead, 4),
            "recovery_overhead_ms": round(recovery_overhead_ms, 2),
        }
    )

    assert overhead <= OVERHEAD_CEILING, (
        f"supervision costs {overhead:.3f}x over the serial kernel on the "
        f"healthy path (ceiling {OVERHEAD_CEILING}x)"
    )
