"""Probe census bench — the §IV-A methodology observation, quantified.

Output: ``benchmarks/results/census.txt``.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import census
from repro.analysis.report import render_table


@pytest.mark.benchmark(group="census")
def test_probe_census(benchmark, full, save_report):
    population = 60 if full else 20

    result = benchmark.pedantic(
        census.run, kwargs=dict(population=population), rounds=1, iterations=1
    )
    text = render_table(
        result.rows,
        columns=[
            "instance", "jobs", "machines", "probes",
            "distinct_sizes", "min_size", "max_size", "min_dims", "max_dims",
        ],
        title=result.description,
    )
    save_report("census", text + "\n\n" + "\n".join(result.notes))

    # The observation itself: single instances span many table sizes
    # and the dimensionality varies with T.
    assert any(r["distinct_sizes"] >= 4 for r in result.rows)
    assert any(r["max_dims"] - r["min_dims"] >= 2 for r in result.rows)
