"""Microbenchmarks of the library's real (wall-clock) hot paths.

Unlike the exhibit benches (which report *simulated* hardware time),
these measure the reproduction's own throughput with pytest-benchmark:
the vectorized DP fill, configuration enumeration, the blocked-layout
permutation, the group-fill kernel, and the host-parallel wavefront.
They guard against performance regressions in the library itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.synthetic import synthetic_probe
from repro.core.configs import enumerate_configurations
from repro.core.dp_vectorized import dp_vectorized
from repro.core.instance import uniform_instance
from repro.core.ptas import ptas_schedule
from repro.dptable.antidiagonal import wavefront
from repro.dptable.layout import BlockedLayout
from repro.dptable.partition import BlockPartition, compute_divisor
from repro.dptable.table import TableGeometry
from repro.engines.base import fill_by_groups
from repro.parallel.wavefront import parallel_wavefront_dp

PROBE = synthetic_probe((4, 4, 6, 6, 2, 3, 3, 2))  # 20736 cells


@pytest.fixture(scope="module")
def configs():
    return PROBE.configs()


@pytest.mark.benchmark(group="micro")
def test_micro_config_enumeration(benchmark):
    result = benchmark(
        enumerate_configurations, PROBE.class_sizes, PROBE.counts, PROBE.target
    )
    assert result.shape[0] > 0


@pytest.mark.benchmark(group="micro")
def test_micro_dp_vectorized(benchmark, configs):
    result = benchmark(
        dp_vectorized, PROBE.counts, PROBE.class_sizes, PROBE.target, configs
    )
    assert result.feasible


@pytest.mark.benchmark(group="micro")
def test_micro_fill_by_groups(benchmark, configs):
    geometry = TableGeometry.from_counts(PROBE.counts)
    groups = list(wavefront(geometry))
    table = benchmark(fill_by_groups, geometry, configs, groups)
    assert table[0] == 0


@pytest.mark.benchmark(group="micro")
def test_micro_blocked_layout_permutation(benchmark):
    geometry = TableGeometry.from_counts(PROBE.counts)
    partition = BlockPartition(geometry, compute_divisor(geometry.shape, 6))
    table = np.arange(geometry.size).reshape(geometry.shape)

    def reorganize_and_restore():
        layout = BlockedLayout(partition)
        return layout.restore(layout.reorganize(table))

    result = benchmark(reorganize_and_restore)
    assert np.array_equal(result, table)


@pytest.mark.benchmark(group="micro")
def test_micro_host_parallel_wavefront(benchmark, configs):
    result = benchmark.pedantic(
        parallel_wavefront_dp,
        args=(PROBE.counts, PROBE.class_sizes, PROBE.target),
        kwargs=dict(configs=configs, workers=4, min_parallel_level=512),
        rounds=1,
        iterations=1,
    )
    assert result.table.size == PROBE.table_size


@pytest.mark.benchmark(group="micro")
def test_micro_full_ptas(benchmark):
    inst = uniform_instance(60, 8, low=10, high=100, seed=21)
    result = benchmark(ptas_schedule, inst, 0.3)
    assert result.makespan > 0
