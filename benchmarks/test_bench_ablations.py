"""§III ablation benches: naive port, stream count, coalescing.

Regenerates the paper's prose claims as data:

* "a direct GPU translation ... is about a hundred times slower than
  the OpenMP implementation" (§III);
* "applying four streams to each data set provides the best
  performance for the majority of problem instances" (§III-E);
* the effective-bus-utilization gain of block-contiguous storage
  (§III-B/E).

Output: ``benchmarks/results/ablation_*.txt``.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ablations
from repro.analysis.report import render_table


@pytest.mark.benchmark(group="ablations")
def test_naive_port_slowdown(benchmark, full, save_report):
    groups = (
        ((8_000, 30_000), (60_000, 160_000))
        if full
        else ((8_000, 30_000),)
    )
    result = benchmark.pedantic(
        ablations.naive_port, kwargs=dict(size_groups=groups), rounds=1, iterations=1
    )
    text = render_table(
        result.rows,
        columns=["table_size", "omp28_s", "naive_gpu_s", "slowdown"],
        title=result.description,
    )
    save_report("ablation_naive", text)

    slowdowns = [r["slowdown"] for r in result.rows]
    benchmark.extra_info["slowdowns"] = [round(s, 1) for s in slowdowns]
    # "about a hundred times slower": accept the 20x-500x band.
    assert all(20 <= s <= 500 for s in slowdowns), slowdowns


@pytest.mark.benchmark(group="ablations")
def test_stream_count_sweep(benchmark, save_report):
    result = benchmark.pedantic(ablations.stream_count, rounds=1, iterations=1)
    text = render_table(
        result.rows,
        columns=["streams", "simulated_s", "utilization"],
        title=result.description,
    )
    note = (
        "note: the model shows mild further gains beyond 4 streams; the "
        "paper found 4 best because real stream scheduling has overheads "
        "the model omits (see EXPERIMENTS.md)"
    )
    save_report("ablation_streams", text + "\n\n" + note)

    times = {r["streams"]: r["simulated_s"] for r in result.rows}
    assert times[4] < times[1], "stream concurrency must help"
    gain_2_to_4 = times[2] - times[4]
    gain_4_to_8 = times[4] - times[8]
    assert gain_2_to_4 > 0.9 * gain_4_to_8, "diminishing returns expected"


@pytest.mark.benchmark(group="ablations")
def test_coalescing_effect(benchmark, save_report):
    result = benchmark.pedantic(ablations.coalescing, rounds=1, iterations=1)
    text = render_table(
        result.rows,
        columns=[
            "engine", "scan_scope", "bus_utilization", "bytes_moved", "simulated_s",
        ],
        title=result.description,
    )
    save_report("ablation_coalescing", text + "\n\n" + "\n".join(result.notes))

    by_engine = {r["engine"]: r for r in result.rows}
    naive = by_engine["gpu-naive"]
    part = next(v for k, v in by_engine.items() if k.startswith("gpu-dim"))
    benchmark.extra_info["bus_utilization"] = {
        "partitioned": round(part["bus_utilization"], 3),
        "naive": round(naive["bus_utilization"], 3),
    }
    assert part["bus_utilization"] >= 10 * naive["bus_utilization"]
    assert part["bytes_moved"] < naive["bytes_moved"]
