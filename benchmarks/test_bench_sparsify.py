"""Sparsification benchmark: dominance pruning + warm starts end to end.

Drives the quarter-split PTAS at the accuracy where the configuration
lattice is large (``eps=0.1``) on the decision kernel, twice per
instance (quarter rounds probe ascending targets, so later probes of a
round find smaller-budget tables to warm-seed from):

* **baseline** — ``sparsify=False`` with a cold-only probe cache: the
  dense clamped fill the library shipped before sparsification
  (``--no-sparsify`` replays exactly this);
* **sparse+warm** — ``sparsify=True`` with table-delta warm starts
  (:class:`~repro.core.probe_cache.ProbeCache` ``warm_start=True``):
  box passes over the dominance-pruned maximal subset plus closure
  sweeps, and later probes seeded from nearby smaller-budget tables.

Both runs must agree on every makespan (the sparse fixpoint is
bit-identical); the **median end-to-end speedup must be >= 1.3x**.

The second gate guards the PR 7 plan-cache path: the warm plan-cache
workload of :mod:`benchmarks.test_bench_plan_cache` is re-measured in
this process and its warm/cold ratio must not regress by more than 5%
against the recorded ``BENCH_plan_cache.json`` (the benchmarks-smoke
CI job emits that file immediately before this one, so the comparison
is same-machine).

Headline numbers land in ``benchmarks/results/BENCH_sparsify.json``.

Run: ``pytest benchmarks/test_bench_sparsify.py --benchmark-only``
"""

from __future__ import annotations

import json
import statistics

import pytest

from repro.core.instance import uniform_instance
from repro.core.kernels.decision import DecisionKernel
from repro.core.probe_cache import NullPlanCache, PlanCache, ProbeCache
from repro.core.ptas import ptas_schedule
from repro.observability import Tracer
from repro.util.timing import Timer

EPS = 0.1


def _workload(full: bool):
    specs = (
        [(28, 5, 46), (32, 5, 47), (36, 6, 48), (40, 6, 49), (44, 7, 50)]
        if full
        else [(18, 4, 46), (20, 4, 47), (22, 5, 48)]
    )
    return [
        uniform_instance(n, m, low=3, high=90, seed=s) for n, m, s in specs
    ]


def _run(inst, sparsify: bool, warm: bool):
    """One full PTAS run; returns ``(result, seconds, tracer)``."""
    tracer = Tracer()
    cache = ProbeCache(warm_start=warm)
    kernel = DecisionKernel(machines=inst.machines, sparsify=sparsify)
    with tracer.activate():
        with Timer() as timer:
            result = ptas_schedule(
                inst, eps=EPS, search="quarter", dp_solver=kernel, cache=cache
            )
    return result, timer.elapsed, tracer


def _plan_cache_ratio() -> float:
    """Fresh warm/cold time ratio of the PR 7 plan-cache workload."""
    from benchmarks.test_bench_plan_cache import (
        _run_passes,
        _workload as _pc_workload,
    )
    from benchmarks.conftest import full_mode

    instances = _pc_workload(full_mode())
    best = float("inf")
    for _ in range(3):
        _, _, _, cold_s = _run_passes(instances, NullPlanCache(), 3)
        _, _, _, warm_s = _run_passes(instances, PlanCache(), 3)
        if cold_s > 0:
            best = min(best, warm_s / cold_s)
    return best


@pytest.mark.benchmark(group="sparsify")
def test_sparsify_speedup(benchmark, results_dir, full):
    instances = _workload(full)

    baseline = [_run(inst, sparsify=False, warm=False) for inst in instances]

    def _fast_pass():
        return [_run(inst, sparsify=True, warm=True) for inst in instances]

    fast = benchmark.pedantic(_fast_pass, rounds=1, iterations=1)

    # -- correctness: zero makespan mismatches -----------------------------
    mismatches = sum(
        1
        for (b, _, _), (f, _, _) in zip(baseline, fast)
        if b.makespan != f.makespan
    )
    assert mismatches == 0

    # -- speedup gate ------------------------------------------------------
    speedups = [
        b_s / f_s if f_s > 0 else float("inf")
        for (_, b_s, _), (_, f_s, _) in zip(baseline, fast)
    ]
    median_speedup = statistics.median(speedups)
    assert median_speedup >= 1.3, (
        f"median sparsify+warm speedup {median_speedup:.2f}x < 1.3x "
        f"(per instance: {[round(s, 2) for s in speedups]})"
    )

    # -- plan-cache regression gate (< 5% vs BENCH_plan_cache.json) -------
    recorded_path = results_dir / "BENCH_plan_cache.json"
    plan_cache_gate = None
    if recorded_path.exists():
        recorded = json.loads(recorded_path.read_text())
        rec_cold = recorded["probe_time_s"]["cold"]
        rec_warm = recorded["probe_time_s"]["warm"]
        if rec_cold > 0 and rec_warm > 0:
            fresh_ratio = _plan_cache_ratio()
            recorded_ratio = rec_warm / rec_cold
            regression = fresh_ratio / recorded_ratio
            assert regression < 1.05, (
                f"warm plan-cache workload regressed {regression:.3f}x "
                f"(fresh warm/cold {fresh_ratio:.3f} vs recorded "
                f"{recorded_ratio:.3f})"
            )
            plan_cache_gate = {
                "recorded_warm_over_cold": round(recorded_ratio, 4),
                "fresh_warm_over_cold": round(fresh_ratio, 4),
                "regression": round(regression, 4),
                "limit": 1.05,
            }

    # -- report ------------------------------------------------------------
    dropped = sum(
        int(t.counters.get("sparsify.dropped", 0)) for _, _, t in fast
    )
    kept = sum(int(t.counters.get("sparsify.kept", 0)) for _, _, t in fast)
    reused = sum(
        int(t.counters.get("warmstart.cells_reused", 0)) for _, _, t in fast
    )
    warm_fills = sum(
        int(t.counters.get("warmstart.fills", 0)) for _, _, t in fast
    )
    payload = {
        "benchmark": "sparsify",
        "mode": "full" if full else "reduced",
        "workload": {
            "instances": len(instances),
            "eps": EPS,
            "search": "quarter",
            "backend": "decision (sparsify + warm-start vs dense cold)",
        },
        "per_instance": [
            {
                "jobs": len(inst.times),
                "machines": inst.machines,
                "baseline_s": round(b_s, 4),
                "sparse_warm_s": round(f_s, 4),
                "speedup": round(sp, 3),
            }
            for inst, (_, b_s, _), (_, f_s, _), sp in zip(
                instances, baseline, fast, speedups
            )
        ],
        "median_speedup": round(median_speedup, 3),
        "makespan_mismatches": mismatches,
        "sparsify": {
            "configs_dropped": dropped,
            "configs_kept": kept,
            "dropped_fraction": round(dropped / (dropped + kept), 4)
            if dropped + kept
            else 0.0,
        },
        "warmstart": {"fills": warm_fills, "cells_reused": reused},
        "plan_cache_gate": plan_cache_gate,
    }
    (results_dir / "BENCH_sparsify.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    benchmark.extra_info.update(
        median_speedup=round(median_speedup, 3),
        makespan_mismatches=mismatches,
        configs_dropped=dropped,
    )
