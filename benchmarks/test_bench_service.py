"""Service benchmark: latency under an open-loop Poisson workload.

Starts the always-on :class:`~repro.service.daemon.SchedulingService`
and drives it with the :mod:`repro.service.loadgen` harness — arrivals
on a Poisson clock that does **not** wait for responses (the open-loop
discipline; a closed loop would hide queueing delay behind coordinated
omission).  A fraction of the arrivals duplicate earlier instances, so
the run also measures how much work request coalescing absorbs.

Headline numbers — bound-stage and refined-stage latency percentiles
(p50/p95/p99), the coalescing hit rate, and the bound-first contract
(must be violation-free) — land in
``benchmarks/results/BENCH_service.json``; docs/PERFORMANCE.md and
docs/SERVICE.md explain how to read them.

Run: ``pytest benchmarks/test_bench_service.py --benchmark-only``
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service import LoadProfile, SchedulingService, generate_arrivals, run_load


def _profile(full: bool) -> LoadProfile:
    # High arrival rate relative to the ~5-15 ms pipeline keeps several
    # requests in flight at once — the regime where coalescing and the
    # priority queue actually matter.
    if full:
        return LoadProfile(
            requests=256, arrival_rate_hz=400.0, jobs=30, machines=5,
            duplicate_fraction=0.4, seed=11,
        )
    return LoadProfile(
        requests=48, arrival_rate_hz=400.0, jobs=20, machines=4,
        duplicate_fraction=0.4, seed=11,
    )


def _run(profile: LoadProfile, workers: int):
    async def scenario():
        service = SchedulingService(workers=workers)
        async with service:
            return await run_load(service, profile)

    return asyncio.run(scenario())


@pytest.mark.benchmark(group="service")
def test_service_latency_under_load(benchmark, results_dir, full):
    profile = _profile(full)
    workers = 4
    report = benchmark.pedantic(
        _run, args=(profile, workers), rounds=1, iterations=1
    )

    # -- the service contract ----------------------------------------------
    assert report.submitted == profile.requests
    assert report.bound_first_violations == 0
    assert len(report.makespans) == profile.requests  # every request served
    assert report.degraded == 0

    # Duplicate arrivals under this much pressure must overlap their
    # twins at least once; the exact rate is the measurement.
    duplicates = sum(
        1 for a in generate_arrivals(profile) if a.duplicate_of is not None
    )
    assert duplicates > 0
    assert report.coalesced >= 1
    assert report.coalesced <= duplicates

    latency = report.stats["latency"]
    counters = report.stats["counters"]
    assert latency["bound"]["count"] == profile.requests
    assert latency["refined"]["count"] == profile.requests
    # Coalesced requests never ran their own pipeline.
    assert counters["pipeline.runs"] == profile.requests - report.coalesced

    # -- report ------------------------------------------------------------
    payload = {
        "benchmark": "service",
        "mode": "full" if full else "reduced",
        "workload": {
            "requests": profile.requests,
            "arrival_rate_hz": profile.arrival_rate_hz,
            "duplicate_fraction": profile.duplicate_fraction,
            "duplicate_arrivals": duplicates,
            "jobs": profile.jobs,
            "machines": profile.machines,
            "eps": profile.eps,
            "seed": profile.seed,
            "workers": workers,
            "open_loop": True,
        },
        "latency_ms": {
            stage: {
                "p50": latency[stage]["p50_ms"],
                "p95": latency[stage]["p95_ms"],
                "p99": latency[stage]["p99_ms"],
                "mean": latency[stage]["mean_ms"],
                "max": latency[stage]["max_ms"],
            }
            for stage in ("bound", "refined")
        },
        "coalescing": {
            "coalesced": report.coalesced,
            "hit_rate": round(report.coalescing_hit_rate, 4),
            "pipeline_runs": counters["pipeline.runs"],
        },
        "bound_first_violations": report.bound_first_violations,
        "degraded": report.degraded,
        "wall_s": round(report.wall_s, 4),
        "cache": report.stats["cache"],
    }
    (results_dir / "BENCH_service.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    benchmark.extra_info.update(
        bound_p99_ms=latency["bound"]["p99_ms"],
        refined_p99_ms=latency["refined"]["p99_ms"],
        coalescing_hit_rate=round(report.coalescing_hit_rate, 4),
    )
