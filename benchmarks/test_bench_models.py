"""Machine-model benchmark: per-model probe latency, lift overhead.

The model abstraction must be free where it matters: the ``identical``
path now runs behind :class:`~repro.models.base.MachineModel` dispatch,
and the 1-type few-types / non-binding time-restricted lifts run the
*same search* (same probed targets, same tables).  This bench emits
``benchmarks/results/BENCH_models.json`` with:

* **identical-path regression** — the issue's hard gate.  PR 7's
  plan-cache benchmark recorded the identical path's warm probe time
  (``BENCH_plan_cache.json``, ``probe_time_s.warm``) on an exactly
  reproducible workload; this bench re-runs that workload through the
  model-dispatched pipeline and asserts the wall time regresses less
  than 5%.  Minimum-of-repeats is compared (interference only ever
  adds time), so the gate is robust to background noise.
* **per-model PTAS latency** — median end-to-end ``ptas_schedule``
  wall time for each model, measured *interleaved* (round-robin over
  the arms) so clock drift hits every arm equally.  The lifted arms
  use the same job vector as the identical arm.
* **lift overhead** — median lifted latency over median identical
  latency.  The lifts do the identical arm's exact DP work plus model
  dispatch; the ratio is tracked and sanity-bounded (the dispatch
  price is a few microseconds per probe, visible on sub-millisecond
  workloads), while the hard 5% budget sits on the identical path
  above, where the issue puts it.
* **genuinely-modelled arms** — a multi-type fleet and a binding cap,
  recorded for tracking (no gate: they legitimately do more work —
  one fill per type, slot-aware placement).

Run: ``pytest benchmarks/test_bench_models.py --benchmark-only``
(``REPRO_BENCH_FULL=1`` for the larger workload).
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

import pytest

from repro.core.instance import uniform_instance
from repro.core.probe_cache import PlanCache
from repro.core.ptas import ptas_schedule
from repro.engines.sequential import SequentialEngine
from repro.models import lift_to_few_types, lift_to_time_restricted, with_model

RESULTS_NAME = "BENCH_models.json"
PR7_RESULTS = Path(__file__).parent / "results" / "BENCH_plan_cache.json"

#: The issue's budget: the identical path may regress at most 5% over
#: the pre-abstraction (PR 7) numbers.
IDENTICAL_REGRESSION_CEILING = 1.05

#: Sanity bound on the lift arms (identical work + model dispatch).
#: Tracking-grade, deliberately looser than the identical-path gate:
#: the fixed per-probe dispatch cost is real but small, and shrinks
#: as the DP grows (see the full-mode numbers).
LIFT_OVERHEAD_CEILING = 1.25


def _workload(full: bool):
    if full:
        return 120, 8, 9
    return 60, 5, 7


def _pr7_workload():
    """PR 7's plan-cache workload, byte-for-byte (reduced mode)."""
    return [uniform_instance(28, 5, low=3, high=120, seed=40 + s) for s in range(3)]


def _pr7_pass(instances, cache) -> None:
    engine = SequentialEngine(plan_cache=cache)
    for inst in instances:
        ptas_schedule(inst, eps=0.25, search="quarter", dp_solver=engine)


def _identical_regression() -> dict:
    """Re-run PR 7's warm plan-cache passes through the model pipeline."""
    stored = json.loads(PR7_RESULTS.read_text())
    baseline_s = float(stored["probe_time_s"]["warm"])
    repeats = int(stored["workload"]["repeats"])

    instances = _pr7_workload()
    cache = PlanCache()
    _pr7_pass(instances, cache)  # build plans, as PR 7's warm run did
    samples = []
    for _ in range(5):
        start = time.perf_counter()
        for _ in range(repeats):
            _pr7_pass(instances, cache)
        samples.append(time.perf_counter() - start)
    current_s = min(samples)
    return {
        "baseline_s": baseline_s,
        "current_s": current_s,
        "ratio": current_s / baseline_s,
    }


@pytest.mark.benchmark(group="models")
def test_model_probe_latency_and_lift_overhead(benchmark, results_dir, full):
    n, m, repeats = _workload(full)
    base = uniform_instance(n, m, low=5, high=95, seed=17)

    arms = {
        "identical": base,
        "few-types-lift": lift_to_few_types(base),
        "time-restricted-lift": lift_to_time_restricted(base),
        # Genuinely modelled workloads (more work by design, no gate).
        "few-types-2types": with_model(
            base,
            "unrelated-few-types",
            type_speeds=(1, 2),
            machines_per_type=(m - 1, 1),
        ),
        "time-restricted-binding": with_model(
            base,
            "time-restricted",
            max_jobs_per_machine=-(-n // m) + 1,
        ),
    }

    def measure():
        samples = {label: [] for label in arms}
        results = {}
        # Warm-up evens out allocator and import effects.
        for label, inst in arms.items():
            results[label] = ptas_schedule(inst, eps=0.3)
        # Interleaved rounds: clock drift lands on every arm equally.
        for _ in range(repeats):
            for label, inst in arms.items():
                start = time.perf_counter()
                results[label] = ptas_schedule(inst, eps=0.3)
                samples[label].append(time.perf_counter() - start)
        latencies = {k: statistics.median(v) for k, v in samples.items()}
        return latencies, results, _identical_regression()

    latencies, results, regression = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    # The lifts are search-identical: equal makespans, unconditionally.
    for label in ("few-types-lift", "time-restricted-lift"):
        assert results[label].makespan == results["identical"].makespan, label
        assert results[label].final_target == results["identical"].final_target

    overhead = {
        label: latencies[label] / latencies["identical"]
        for label in ("few-types-lift", "time-restricted-lift")
    }

    payload = {
        "benchmark": "models",
        "mode": "full" if full else "reduced",
        "workload": {"jobs": n, "machines": m, "repeats": repeats, "eps": 0.3},
        "median_ms": {k: v * 1e3 for k, v in latencies.items()},
        "makespans": {k: r.makespan for k, r in results.items()},
        "lift_overhead_vs_identical": overhead,
        "lift_overhead_ceiling": LIFT_OVERHEAD_CEILING,
        "identical_vs_pr7": {
            **regression,
            "ceiling": IDENTICAL_REGRESSION_CEILING,
            "workload": "BENCH_plan_cache.json warm passes (quarter, eps 0.25)",
        },
    }
    path = results_dir / RESULTS_NAME
    path.write_text(json.dumps(payload, indent=2) + "\n")

    benchmark.extra_info.update(
        {f"overhead_{k}": round(v, 3) for k, v in overhead.items()}
    )
    benchmark.extra_info["identical_vs_pr7"] = round(regression["ratio"], 3)

    # The issue's hard gate: the identical path through model dispatch
    # must stay within 5% of the pre-abstraction numbers.
    assert regression["ratio"] < IDENTICAL_REGRESSION_CEILING, (
        f"identical path now takes {regression['current_s']:.4f}s vs PR 7's "
        f"{regression['baseline_s']:.4f}s ({regression['ratio']:.3f}x); "
        f"budget is {IDENTICAL_REGRESSION_CEILING}x"
    )

    for label, ratio in overhead.items():
        assert ratio < LIFT_OVERHEAD_CEILING, (
            f"{label} costs {ratio:.3f}x the identical path; the dispatch "
            f"sanity bound is {LIFT_OVERHEAD_CEILING}x"
        )
