"""Cross-probe cache micro-benchmark: probe-count x enumeration-cost.

Runs an identical batch workload (several instances, both search
strategies) twice — once cacheless, once with one shared
:class:`repro.core.probe_cache.ProbeCache` — with a tracer attached to
both passes, and reports:

* the configuration-enumeration and DP-fill work each pass performed
  (from the tracer's deterministic counters),
* the cache's per-artifact hit rates,
* the measured wall-clock speedup,

while asserting the two passes produced **bit-identical schedules**.
The report lands in ``benchmarks/results/cache.txt`` (``-reduced``
suffix for quick runs); ``docs/PERFORMANCE.md`` documents how to
reproduce and read it.

Run: ``pytest benchmarks/test_bench_cache.py --benchmark-only``
"""

from __future__ import annotations

import pytest

from repro.core.instance import uniform_instance
from repro.core.probe_cache import ProbeCache
from repro.core.ptas import ptas_schedule
from repro.observability import Tracer
from repro.util.timing import Timer


def _workload(full: bool):
    seeds = range(10) if full else range(4)
    n, m = (60, 8) if full else (30, 5)
    return [uniform_instance(n, m, low=3, high=120, seed=s) for s in seeds]


def _run_batch(instances, cache):
    """One pass over the batch; returns (results, tracer, wall_seconds)."""
    tracer = Tracer()
    results = []
    with Timer() as timer:
        with tracer.activate():
            for inst in instances:
                for search in ("bisection", "quarter"):
                    results.append(
                        ptas_schedule(inst, eps=0.25, search=search, cache=cache)
                    )
    return results, tracer, timer.elapsed


@pytest.mark.benchmark(group="cache")
def test_cross_probe_cache_speedup(benchmark, save_report, full):
    instances = _workload(full)

    base_results, base_tracer, base_s = _run_batch(instances, cache=None)

    cache = ProbeCache()
    cached_results, cached_tracer, cached_s = benchmark.pedantic(
        _run_batch,
        args=(instances,),
        kwargs=dict(cache=cache),
        rounds=1,
        iterations=1,
    )

    # -- correctness: bit-identical outcomes ------------------------------
    assert len(cached_results) == len(base_results)
    for plain, hit in zip(base_results, cached_results):
        assert hit.final_target == plain.final_target
        assert hit.makespan == plain.makespan
        assert hit.schedule.assignment == plain.schedule.assignment

    # -- the work reduction (deterministic counters) ----------------------
    def work(tracer):
        c = tracer.counters
        return {
            "probes": int(c.get("probe.count", 0)),
            "enumerations": int(c.get("configs.enumerations", 0)),
            "config_vectors": int(c.get("configs.vectors", 0)),
            "dp_fills": int(c.get("dp.vectorized.calls", 0)),
            "dp_config_passes": int(c.get("dp.vectorized.config_passes", 0)),
        }

    base_work, cached_work = work(base_tracer), work(cached_tracer)
    dp_rate = cache.stats.hit_rate("dp")
    speedup = base_s / cached_s if cached_s > 0 else float("inf")

    assert cache.stats.total_hits > 0, "cache never hit on the batch workload"
    assert dp_rate > 0.0
    assert cached_work["enumerations"] < base_work["enumerations"]
    assert cached_work["dp_fills"] < base_work["dp_fills"]

    # -- report -----------------------------------------------------------
    lines = [
        "Cross-probe solver cache: identical batch, cacheless vs shared cache",
        f"workload: {len(instances)} instances x 2 searches (bisection + quarter), eps=0.25",
        "",
        f"{'quantity':<28} {'cacheless':>12} {'cached':>12} {'saved':>8}",
    ]
    for key in base_work:
        b, c = base_work[key], cached_work[key]
        saved = (1 - c / b) if b else 0.0
        lines.append(f"{key:<28} {b:>12,} {c:>12,} {saved:>7.1%}")
    lines += [
        "",
        f"cache hit rates: dp {dp_rate:.1%}, "
        f"configs {cache.stats.hit_rate('configs'):.1%}, "
        f"rounding {cache.stats.hit_rate('rounding'):.1%}",
        f"wall time: cacheless {base_s:.3f}s, cached {cached_s:.3f}s "
        f"-> speedup {speedup:.2f}x",
        "",
        "Schedules verified bit-identical across the two passes "
        "(final_target, makespan, job assignment).",
    ]
    save_report("cache", "\n".join(lines))

    benchmark.extra_info.update(
        dp_hit_rate=round(dp_rate, 4),
        speedup=round(speedup, 3),
        enumerations_saved=base_work["enumerations"] - cached_work["enumerations"],
    )
