"""DP-kernel benchmark: the adaptive kernel suite vs the historical fill.

Two arms, both on Table-I-scale instances (rounded DP tables in the
thousands of cells), emitting ``benchmarks/results/BENCH_dp_kernels.json``:

* **probe microbench** — per-kernel fill time at targets across the
  deadline band ``[0.4 * LB, final]``, split by outcome.  Rejected
  probes are where decision mode pays: the clamp plus the O(1)
  load-bound reject stop them without an exact fill (asserted >= 2x
  median speedup vs :func:`~repro.core.dp_vectorized.dp_vectorized`).
* **end-to-end** — full ``ptas_schedule`` wall time with the ``auto``
  backend vs the *seed kernel* (the pre-suite production fill, vendored
  below: int64 tables, per-round slice construction, per-probe argsort).
  Asserted >= 1.3x median speedup at full scale, with bit-identical
  final makespans across every kernel (vectorized / decision / sweep /
  auto / seed).

Run: ``pytest benchmarks/test_bench_dp_kernels.py --benchmark-only``
(``REPRO_BENCH_FULL=1`` for the paper-scale workload; the reduced CI
smoke run asserts a lower 1.15x end-to-end floor against runner noise).
"""

from __future__ import annotations

import json
import statistics
import time

import numpy as np
import pytest

from repro.backends import resolve
from repro.core.configs import enumerate_configurations
from repro.core.bounds import makespan_bounds
from repro.core.dp_common import DPResult, UNREACHABLE, empty_dp_result
from repro.core.dp_vectorized import dp_vectorized
from repro.core.instance import uniform_instance
from repro.core.kernels import dp_decision
from repro.core.probe_cache import PlanCache
from repro.core.ptas import ptas_schedule
from repro.core.rounding import round_instance
from repro.errors import DPError

RESULTS_NAME = "BENCH_dp_kernels.json"


def _seed_dp_vectorized(counts, class_sizes, target, configs=None, max_rounds=None):
    """The seed production fill, vendored verbatim as the e2e baseline.

    This is ``dp_vectorized`` as it stood before the kernel suite:
    int64 tables, slice views rebuilt per (round, config) pass, and the
    config order argsorted on every probe.  Keeping a faithful copy
    here pins the end-to-end comparison to the behaviour this PR
    replaced, independent of future improvements to the live kernel.
    """
    counts = tuple(int(c) for c in counts)
    if len(counts) == 0:
        return empty_dp_result()
    if configs is None:
        configs = enumerate_configurations(class_sizes, counts, target)
    shape = tuple(c + 1 for c in counts)
    table = np.full(shape, UNREACHABLE, dtype=np.int64)
    table[(0,) * len(counts)] = 0
    if configs.shape[0] == 0:
        return DPResult(table=table, configs=configs)
    if max_rounds is None:
        max_rounds = sum(counts) + 1
    order = np.argsort(-configs.sum(axis=1), kind="stable")
    scratch = np.empty(table.size, dtype=np.int64)
    mask = np.empty(table.size, dtype=bool)
    for _ in range(max_rounds):
        changed = False
        for idx in order:
            cfg = configs[idx]
            dst = table[tuple(slice(int(c), None) for c in cfg)]
            src = table[
                tuple(slice(None, s - int(c)) for s, c in zip(table.shape, cfg))
            ]
            cand = scratch[: src.size].reshape(src.shape)
            np.add(src, 1, out=cand)
            improved = mask[: src.size].reshape(src.shape)
            np.less(cand, dst, out=improved)
            if improved.any():
                np.copyto(dst, cand, where=improved)
                changed = True
        if not changed:
            return DPResult(table=table, configs=configs)
    raise DPError("seed relaxation did not converge")


def _merge_results(results_dir, section: str, payload: dict) -> None:
    """Update one section of the shared JSON artifact."""
    path = results_dir / RESULTS_NAME
    merged = {}
    if path.exists():
        try:
            merged = json.loads(path.read_text())
        except json.JSONDecodeError:
            merged = {}
    merged["benchmark"] = "dp_kernels"
    merged[section] = payload
    path.write_text(json.dumps(merged, indent=2) + "\n")


def _time_fill(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.benchmark(group="dp-kernels")
def test_rejected_probe_speedup(benchmark, results_dir, full):
    """Decision-mode fills vs the exact relaxation across the deadline band."""
    if full:
        inst, eps = uniform_instance(60, 8, low=5, high=100, seed=1), 0.2
    else:
        inst, eps = uniform_instance(40, 6, low=5, high=100, seed=1), 0.25
    machines = inst.machines
    bounds = makespan_bounds(inst)
    final = ptas_schedule(inst, eps=eps).final_target

    # Ten probe targets from deep inside the deadline band (feasibility
    # queries "can we meet deadline T?" for T far below any optimum) up
    # to the search's converged target, where probes flip to accepts.
    lo = max(1, int(0.4 * bounds.lower))
    targets = sorted({int(t) for t in np.linspace(lo, final, 10)})

    def measure():
        rows = []
        for target in targets:
            rounded = round_instance(inst, target, eps)
            configs = enumerate_configurations(
                rounded.class_sizes, rounded.counts, rounded.target
            )
            vec = dp_vectorized(
                rounded.counts, rounded.class_sizes, rounded.target, configs
            )
            dec = dp_decision(
                rounded.counts,
                rounded.class_sizes,
                rounded.target,
                machines=machines,
                configs=configs,
            )
            rejected = vec.opt > machines
            assert dec.decided_infeasible == rejected, target
            if not rejected:
                assert dec.opt == vec.opt, target
            vec_s = _time_fill(
                lambda: dp_vectorized(
                    rounded.counts, rounded.class_sizes, rounded.target, configs
                ),
                repeats=1 if full else 2,
            )
            dec_s = _time_fill(
                lambda: dp_decision(
                    rounded.counts,
                    rounded.class_sizes,
                    rounded.target,
                    machines=machines,
                    configs=configs,
                ),
                repeats=3,
            )
            rows.append(
                {
                    "target": target,
                    "outcome": "rejected" if rejected else "accepted",
                    "table_cells": rounded.table_size,
                    "num_configs": int(configs.shape[0]),
                    "vectorized_ms": round(vec_s * 1e3, 3),
                    "decision_ms": round(dec_s * 1e3, 3),
                    "speedup": round(vec_s / dec_s, 2) if dec_s else None,
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    rejected = [r for r in rows if r["outcome"] == "rejected"]
    accepted = [r for r in rows if r["outcome"] == "accepted"]
    assert rejected, "deadline band produced no rejected probes"
    assert accepted, "deadline band produced no accepted probes"
    median_rejected = statistics.median(r["speedup"] for r in rejected)
    median_accepted = statistics.median(r["speedup"] for r in accepted)
    assert median_rejected >= 2.0, (
        f"median rejected-probe speedup {median_rejected:.2f}x < 2x"
    )

    _merge_results(
        results_dir,
        "probe_microbench",
        {
            "mode": "full" if full else "reduced",
            "workload": {
                "instance": f"uniform(n={len(inst.times)}, m={machines}, "
                "low=5, high=100, seed=1)",
                "eps": eps,
                "band": [targets[0], targets[-1]],
                "search_lower_bound": bounds.lower,
                "final_target": final,
            },
            "probes": rows,
            "median_speedup_rejected": round(median_rejected, 2),
            "median_speedup_accepted": round(median_accepted, 2),
        },
    )
    benchmark.extra_info.update(
        median_rejected_speedup=round(median_rejected, 2),
        rejected_probes=len(rejected),
    )


@pytest.mark.benchmark(group="dp-kernels")
def test_end_to_end_auto_speedup(benchmark, results_dir, full):
    """Full ``ptas_schedule`` wall time: ``auto`` vs the seed kernel."""
    if full:
        workload = [
            (uniform_instance(60, 8, low=5, high=100, seed=1), 0.15),
            (uniform_instance(60, 8, low=5, high=100, seed=2), 0.15),
            (uniform_instance(40, 10, low=5, high=100, seed=5), 0.2),
        ]
        reps, floor = 3, 1.3
    else:
        workload = [(uniform_instance(40, 10, low=5, high=100, seed=5), 0.2)]
        reps, floor = 2, 1.15

    for inst, eps in workload:  # fault-in all code paths before timing
        ptas_schedule(inst, eps=eps)

    def run_auto():
        times, results = [], []
        for inst, eps in workload:
            per = []
            for _ in range(reps):
                # A fresh plan cache per repetition: the measured win is
                # the kernel suite itself, not cross-run plan reuse.
                solver = resolve("auto", plan_cache=PlanCache())
                start = time.perf_counter()
                result = ptas_schedule(inst, eps=eps, dp_solver=solver)
                per.append(time.perf_counter() - start)
            times.append(min(per))
            results.append(result)
        return times, results

    rows = []
    makespans_identical = True
    auto_times, auto_results = benchmark.pedantic(run_auto, rounds=1, iterations=1)
    for (inst, eps), auto_s, auto_res in zip(workload, auto_times, auto_results):
        seed_s = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            seed_res = ptas_schedule(inst, eps=eps, dp_solver=_seed_dp_vectorized)
            seed_s = min(seed_s, time.perf_counter() - start)
        per_kernel = {"auto": auto_s, "seed": seed_s}
        makespans = {"auto": auto_res.makespan, "seed": seed_res.makespan}
        for name in ("vectorized", "decision", "sweep"):
            start = time.perf_counter()
            res = ptas_schedule(inst, eps=eps, dp_solver=resolve(name))
            per_kernel[name] = time.perf_counter() - start
            makespans[name] = res.makespan
        makespans_identical &= len(set(makespans.values())) == 1
        rows.append(
            {
                "instance": f"uniform(n={len(inst.times)}, m={inst.machines}, "
                f"low=5, high=100)",
                "eps": eps,
                "wall_ms": {
                    k: round(v * 1e3, 2) for k, v in sorted(per_kernel.items())
                },
                "makespan": makespans["auto"],
                "speedup_auto_vs_seed": round(seed_s / auto_s, 2),
            }
        )

    assert makespans_identical, "kernels disagree on a final makespan"
    median_speedup = statistics.median(r["speedup_auto_vs_seed"] for r in rows)
    assert median_speedup >= floor, (
        f"median end-to-end speedup {median_speedup:.2f}x < {floor}x"
    )

    _merge_results(
        results_dir,
        "end_to_end",
        {
            "mode": "full" if full else "reduced",
            "baseline": "seed dp_vectorized (pre-kernel-suite fill)",
            "repeats": reps,
            "runs": rows,
            "median_speedup_auto_vs_seed": round(median_speedup, 2),
            "identical_makespans_across_kernels": makespans_identical,
        },
    )
    benchmark.extra_info.update(
        median_speedup=round(median_speedup, 2),
        identical_makespans=makespans_identical,
    )
