"""Device-sensitivity bench — beyond the paper's single-GPU evaluation.

Reruns the CPU-vs-GPU comparison across three device models (K20, the
paper's K40, and a hypothetical modern datacenter GPU in the same cost
model), reporting each device's crossover table size.

Output: ``benchmarks/results/sensitivity.txt``.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import sensitivity
from repro.analysis.report import render_table
from repro.analysis.workloads import harvest_tables
from repro.gpusim.spec import KEPLER_K40, MODERN_DATACENTER


@pytest.mark.benchmark(group="sensitivity")
def test_device_sensitivity(benchmark, full, save_report):
    groups = (
        [(500, 8_000), (8_001, 60_000), (60_001, 200_000)]
        if full
        else [(500, 8_000), (8_001, 60_000)]
    )
    tables = harvest_tables(groups, per_group=3, seed=77, pool_size=4000)

    result = benchmark.pedantic(
        sensitivity.run, kwargs=dict(tables=tables), rounds=1, iterations=1
    )

    crossovers = sensitivity.crossover_per_device(result)
    text = render_table(
        sorted(result.rows, key=lambda r: (r["device"], r["table_size"])),
        columns=["device", "table_size", "omp28_s", "gpu_s", "gpu_wins"],
        title=result.description,
    )
    text += "\n\ncrossover (smallest winning table size) per device:\n"
    for device, size in sorted(crossovers.items()):
        text += f"  {device}: {size}\n"
    save_report("sensitivity", text)

    benchmark.extra_info["crossovers"] = {
        k.split(" (")[0]: v for k, v in crossovers.items()
    }

    modern = crossovers[MODERN_DATACENTER.name]
    k40 = crossovers[KEPLER_K40.name]
    assert modern is not None, "the modern device must win somewhere"
    if k40 is not None:
        assert modern <= k40, "newer hardware must move the crossover down"
    # The small-table CPU regime persists on every device.
    smallest = min(r["table_size"] for r in result.rows)
    assert all(
        not r["gpu_wins"] for r in result.rows if r["table_size"] == smallest
    )
