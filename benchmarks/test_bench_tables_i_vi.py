"""Tables I–VI — block dimensional sizes, ours vs the paper's columns.

Pure geometry (no simulation): Algorithm 4's divisor under GPU-DIM3 and
under each table's best setting, compared row by row against the
paper's printed block shapes.  Also regenerates Fig. 2's decomposition.

Output: ``benchmarks/results/tables_i_vi.txt``,
``benchmarks/results/fig2.txt``.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import fig1, fig2, tables_i_vi
from repro.analysis.report import render_table


@pytest.mark.benchmark(group="tables")
def test_tables_i_vi_block_shapes(benchmark, save_report):
    result = benchmark.pedantic(tables_i_vi.run, rounds=1, iterations=1)

    text = render_table(
        result.rows,
        columns=[
            "table_size", "n_dims", "shape",
            "ours_dim3", "paper_dim3", "match_dim3",
            "best_dim", "ours_best", "paper_best", "match_best",
        ],
        title=result.description,
    )
    save_report("tables_i_vi", text + "\n\n" + "\n".join(result.notes))

    both = sum(1 for r in result.rows if r["match_dim3"] and r["match_best"])
    dim3 = sum(1 for r in result.rows if r["match_dim3"])
    benchmark.extra_info["verbatim_rows"] = f"{both}/{len(result.rows)}"
    benchmark.extra_info["dim3_verbatim"] = f"{dim3}/{len(result.rows)}"
    assert both >= 12 and dim3 >= 15


@pytest.mark.benchmark(group="tables")
def test_fig1_wavefront_example(benchmark, save_report):
    result = benchmark.pedantic(fig1.run, rounds=1, iterations=1)
    text = render_table(
        result.rows, columns=["cell", "level", "core"], title=result.description
    )
    save_report("fig1", text + "\n\n" + "\n".join(result.notes))
    assert len(result.rows) == 12  # 3x4 table
    assert max(r["level"] for r in result.rows) == 5


@pytest.mark.benchmark(group="tables")
def test_fig2_partition_example(benchmark, save_report):
    result = benchmark.pedantic(fig2.run, rounds=1, iterations=1)
    text = render_table(
        result.rows,
        columns=["block", "block_level", "stream", "cells", "inblock_levels"],
        title=result.description,
    )
    save_report("fig2", text + "\n\n" + "\n".join(result.notes))
    assert len(result.rows) == 27
