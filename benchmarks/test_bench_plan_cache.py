"""Plan-cache benchmark: schedule-derivation cost across repeated probes.

Drives the quarter-split search over a small fleet on a plan-aware
engine with DP sharing off (every probe reaches the solver), twice:

* **cold** — a fresh :class:`~repro.core.probe_cache.NullPlanCache`,
  so every probe re-derives its wavefront schedule, work profile, and
  partitions from scratch;
* **warm** — one shared :class:`~repro.core.probe_cache.PlanCache`,
  so repeated probe structures reuse one :class:`ProbePlan`.

Both passes must produce identical schedules.  The headline numbers —
plan build time, steady-state hit rate (asserted >= 95%), and the
end-to-end probe-time speedup — land in
``benchmarks/results/BENCH_plan_cache.json``; docs/PERFORMANCE.md
explains how the plan cache composes with the probe cache.

Run: ``pytest benchmarks/test_bench_plan_cache.py --benchmark-only``
"""

from __future__ import annotations

import json

import pytest

from repro.core.instance import uniform_instance
from repro.core.probe_cache import NullPlanCache, PlanCache
from repro.core.ptas import ptas_schedule
from repro.engines.sequential import SequentialEngine
from repro.observability import Tracer
from repro.util.timing import Timer


def _workload(full: bool):
    seeds = range(6) if full else range(3)
    n, m = (50, 7) if full else (28, 5)
    return [uniform_instance(n, m, low=3, high=120, seed=40 + s) for s in seeds]


def _run_passes(instances, plan_cache, repeats: int):
    """``repeats`` identical quarter-split passes over the fleet.

    Returns ``(results, warmup_tracer, steady_tracer, wall_seconds)``:
    the first pass (which populates a shared cache) is traced apart
    from the steady-state repeats so the hit rate of a *recurring*
    batch is measured honestly.
    """
    warmup, steady = Tracer(), Tracer()
    results = []
    with Timer() as timer:
        for rep in range(repeats):
            tracer = warmup if rep == 0 else steady
            with tracer.activate():
                engine = SequentialEngine(plan_cache=plan_cache)
                for inst in instances:
                    results.append(
                        ptas_schedule(
                            inst, eps=0.25, search="quarter", dp_solver=engine
                        )
                    )
    return results, warmup, steady, timer.elapsed


@pytest.mark.benchmark(group="plan-cache")
def test_plan_cache_speedup(benchmark, results_dir, full):
    instances = _workload(full)
    repeats = 3

    cold_results, cold_warm_t, cold_steady_t, cold_s = _run_passes(
        instances, NullPlanCache(), repeats
    )

    cache = PlanCache()
    warm_results, warm_warm_t, warm_steady_t, warm_s = benchmark.pedantic(
        _run_passes,
        args=(instances, cache, repeats),
        rounds=1,
        iterations=1,
    )

    # -- correctness: identical outcomes ----------------------------------
    assert len(warm_results) == len(cold_results)
    for plain, planned in zip(cold_results, warm_results):
        assert planned.final_target == plain.final_target
        assert planned.makespan == plain.makespan
        assert planned.schedule.assignment == plain.schedule.assignment

    # -- plan-cache effectiveness ------------------------------------------
    steady_hits = int(warm_steady_t.counters.get("plan.cache.hit", 0))
    steady_misses = int(warm_steady_t.counters.get("plan.cache.miss", 0))
    steady_lookups = steady_hits + steady_misses
    steady_rate = steady_hits / steady_lookups if steady_lookups else 0.0
    overall_rate = cache.stats.hit_rate("plan")

    cold_build_ms = float(
        cold_warm_t.counters.get("plan.build_ms", 0.0)
        + cold_steady_t.counters.get("plan.build_ms", 0.0)
    )
    warm_build_ms = float(
        warm_warm_t.counters.get("plan.build_ms", 0.0)
        + warm_steady_t.counters.get("plan.build_ms", 0.0)
    )
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")

    assert steady_lookups > 0, "steady-state passes saw no probes"
    assert steady_rate >= 0.95, (
        f"steady-state plan-cache hit rate {steady_rate:.1%} < 95%"
    )
    assert warm_build_ms < cold_build_ms
    assert speedup > 1.0, f"no probe-time reduction (speedup {speedup:.2f}x)"

    # -- report ------------------------------------------------------------
    probes_per_pass = sum(len(r.probes) for r in cold_results) // repeats
    payload = {
        "benchmark": "plan_cache",
        "mode": "full" if full else "reduced",
        "workload": {
            "instances": len(instances),
            "search": "quarter",
            "eps": 0.25,
            "repeats": repeats,
            "backend": "serial (plan-aware, share_dp accounting off)",
            "probes_per_pass": probes_per_pass,
        },
        "plan_cache": {
            "plans_built": int(
                warm_warm_t.counters.get("plan.cache.miss", 0) + steady_misses
            ),
            "steady_state_hits": steady_hits,
            "steady_state_misses": steady_misses,
            "steady_state_hit_rate": round(steady_rate, 4),
            "overall_hit_rate": round(overall_rate, 4),
        },
        "plan_build_ms": {
            "cold": round(cold_build_ms, 3),
            "warm": round(warm_build_ms, 3),
            "saved_pct": round(100.0 * (1 - warm_build_ms / cold_build_ms), 1)
            if cold_build_ms
            else 0.0,
        },
        "probe_time_s": {"cold": round(cold_s, 4), "warm": round(warm_s, 4)},
        "speedup": round(speedup, 3),
        "identical_results": True,
    }
    (results_dir / "BENCH_plan_cache.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    benchmark.extra_info.update(
        steady_state_hit_rate=round(steady_rate, 4),
        speedup=round(speedup, 3),
        plan_build_ms_saved=round(cold_build_ms - warm_build_ms, 3),
    )
