"""Fig. 3 — average running time vs DP-table size (all three panels).

Regenerates the paper's central comparison: OMP16/OMP28 vs the
partitioned GPU settings across harvested DP-tables in the paper's
three size groups.  Reduced mode covers groups (a) and (b) with a
representative dim subset; full mode covers all three groups with
GPU-DIM3..9 (minutes of wall time).

Output: ``benchmarks/results/fig3.txt`` — one ASCII log-log panel per
group plus the measured crossover size.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import fig3
from repro.analysis.paper_data import FIG3_GROUPS, GPU_DIMS
from repro.analysis.report import ascii_plot, render_table
from repro.analysis.workloads import harvest_tables


def _workload(full: bool):
    if full:
        groups = FIG3_GROUPS
        per_group, dims = 12, tuple(GPU_DIMS)
        pool = 12000
    else:
        groups = [(100, 10_000), (20_000, 100_000)]
        per_group, dims = 4, (3, 6, 9)
        pool = 4000
    tables = harvest_tables(groups, per_group, seed=2018, pool_size=pool)
    return groups, dims, tables


@pytest.mark.benchmark(group="fig3")
def test_fig3_runtime_vs_table_size(benchmark, full, save_report):
    groups, dims, tables = _workload(full)

    result = benchmark.pedantic(
        fig3.run, kwargs=dict(dims=dims, tables=tables), rounds=1, iterations=1
    )

    sections = [result.description, ""]
    for i, (lo, hi) in enumerate(groups):
        panel = chr(ord("a") + i)
        rows = [r for r in result.rows if r["group"] == panel]
        if not rows:
            continue
        series: dict[str, list[tuple[float, float]]] = {}
        for r in rows:
            series.setdefault(r["engine"], []).append(
                (float(r["table_size"]), float(r["simulated_s"]))
            )
        sections.append(
            ascii_plot(
                series,
                title=f"Fig. 3({panel}): table sizes {lo}..{hi}",
                xlabel="DP-table size",
                ylabel="simulated seconds",
            )
        )
        sections.append("")
        sections.append(
            render_table(
                sorted(rows, key=lambda r: (r["table_size"], r["engine"])),
                columns=["table_size", "dims", "engine", "simulated_s"],
            )
        )
        sections.append("")

    crossover = fig3.crossover_size(result)
    sections.append(f"measured GPU/OpenMP crossover size: {crossover}")
    sections.append("paper: GPU faster above ~30000 (Fig. 3b discussion)")
    save_report("fig3", "\n".join(sections))

    benchmark.extra_info["tables"] = len(tables)
    benchmark.extra_info["crossover_size"] = crossover

    # Reproduction assertions (the paper's shapes), compared per table
    # (comparing minima across *different* tables would mix sizes).
    by_size: dict[int, dict[str, float]] = {}
    for r in result.rows:
        by_size.setdefault(r["table_size"], {})[r["engine"]] = r["simulated_s"]

    def best_gpu(times: dict[str, float]) -> float:
        return min(t for e, t in times.items() if e.startswith("gpu"))

    small_sizes = [s_ for s_ in by_size if s_ <= 10_000]
    assert small_sizes, "panel (a) must have tables"
    omp_wins_small = sum(
        1 for s_ in small_sizes if by_size[s_]["omp28"] < best_gpu(by_size[s_])
    )
    assert omp_wins_small >= len(small_sizes) - 1, "OpenMP must win panel (a)"

    large_sizes = [s_ for s_ in by_size if s_ >= 100_000]
    for s_ in large_sizes:
        assert best_gpu(by_size[s_]) < by_size[s_]["omp28"], (
            f"GPU must win the large panel at size {s_}"
        )
