"""Table VII — quarter split vs OpenMP bisection on full PTAS runs.

For each designated DP-table size, find an instance producing such a
table, run the complete PTAS under both drivers, and report iteration
counts and simulated runtimes next to the paper's milliseconds.
Reduced mode runs the three smaller sizes; full mode adds 30240 and the
heavyweight 403200 row.

Output: ``benchmarks/results/table_vii.txt``.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import table7
from repro.analysis.report import render_table


@pytest.mark.benchmark(group="table7")
def test_table_vii_quarter_split(benchmark, full, save_report):
    sizes = (12960, 20736, 27360, 30240, 403200) if full else (12960, 20736, 27360)

    result = benchmark.pedantic(
        table7.run, kwargs=dict(sizes=sizes), rounds=1, iterations=1
    )

    text = render_table(
        result.rows,
        columns=[
            "table_size", "actual_max_table",
            "gpu_itr", "omp_itr", "paper_gpu_itr", "paper_omp_itr",
            "gpu_ms", "omp_ms", "paper_gpu_ms", "paper_omp_ms",
        ],
        title=result.description,
    )
    save_report("table_vii", text + "\n\n" + "\n".join(result.notes))

    # Reproduction shapes.
    for row in result.rows:
        assert row["gpu_itr"] < row["omp_itr"], (
            "quarter split must need fewer iterations"
        )
    # The largest measured size must favour the GPU decisively; at
    # 12960 the engines should be within an order of magnitude
    # (the paper's values are 13.2s GPU vs 11.2s OpenMP).
    biggest = max(result.rows, key=lambda r: r["table_size"])
    smallest = min(result.rows, key=lambda r: r["table_size"])
    if biggest["table_size"] >= 27360:
        assert biggest["gpu_ms"] < biggest["omp_ms"]
    assert smallest["gpu_ms"] < 20 * smallest["omp_ms"]

    benchmark.extra_info["rows"] = [
        {k: row[k] for k in ("table_size", "gpu_itr", "omp_itr")}
        for row in result.rows
    ]
