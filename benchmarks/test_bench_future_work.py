"""Benches for the paper's §V future-work directions, implemented here.

* the data-partitioning scheme applied to a multidimensional knapsack
  (generality of the technique);
* block-residency memory management (device-memory reduction vs the
  whole-table residency of the published implementation).

Output: ``benchmarks/results/future_knapsack.txt``,
``benchmarks/results/future_residency.txt``.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import render_table
from repro.analysis.synthetic import synthetic_probe
from repro.core.configs import enumerate_configurations
from repro.dptable.partition import BlockPartition
from repro.dptable.table import TableGeometry
from repro.engines.gpu_partitioned import GpuPartitionedEngine
from repro.extensions.knapsack import (
    KnapsackGpuEngine,
    knapsack_dp,
    knapsack_greedy,
    random_knapsack,
)
from repro.extensions.residency import BlockResidency


@pytest.mark.benchmark(group="future-work")
def test_knapsack_partitioning(benchmark, full, save_report):
    capacity = (30, 24, 24) if full else (20, 16, 16)
    inst = random_knapsack(60, capacity=capacity, max_weight=6, seed=6)

    def sweep():
        rows = []
        for dim in (1, 2, 3):
            run = KnapsackGpuEngine(dim=dim).run(inst)
            rows.append(
                {
                    "partition_dims": dim,
                    "blocks": run.metrics["num_blocks"],
                    "simulated_s": run.simulated_s,
                    "best_value": run.best_value,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    optimal = int(knapsack_dp(inst)[tuple(inst.capacity)])
    greedy = knapsack_greedy(inst)
    header = (
        f"multidimensional knapsack, {inst.n_items} items, capacity "
        f"{inst.capacity} ({inst.table_size} cells); greedy {greedy}, "
        f"optimal {optimal}"
    )
    save_report("future_knapsack", header + "\n\n" + render_table(rows))

    assert all(r["best_value"] == optimal for r in rows)
    assert greedy <= optimal


@pytest.mark.benchmark(group="future-work")
def test_block_residency_savings(benchmark, full, save_report):
    shapes = [
        ((12, 12, 12, 8), (4, 4, 4, 2)),
        ((16, 16, 16), (4, 4, 4)),
        ((9, 9, 9, 9), (3, 3, 3, 3)),
    ]
    if full:
        shapes.append(((24, 24, 24, 6), (8, 8, 8, 3)))

    def analyse():
        rows = []
        for shape, divisor in shapes:
            probe = synthetic_probe(shape)
            partition = BlockPartition(TableGeometry(shape), divisor)
            configs = enumerate_configurations(
                probe.class_sizes, probe.counts, probe.target
            )
            res = BlockResidency(partition, configs)
            rows.append(
                {
                    "shape": shape,
                    "blocks": partition.num_blocks,
                    "span": res.dependency_span,
                    "peak_blocks": res.peak_resident_blocks,
                    "full_bytes": res.full_table_bytes(),
                    "peak_bytes": res.peak_resident_bytes(),
                    "savings": res.savings_ratio(),
                }
            )
        return rows

    rows = benchmark.pedantic(analyse, rounds=1, iterations=1)
    save_report(
        "future_residency",
        render_table(rows, title="block-residency device-memory savings"),
    )

    # On these fine partitions the plan must save real memory.
    assert all(r["savings"] > 0.05 for r in rows)
    benchmark.extra_info["savings"] = [round(r["savings"], 3) for r in rows]


@pytest.mark.benchmark(group="future-work")
def test_residency_inside_engine(benchmark, save_report):
    probe = synthetic_probe((12, 12, 12, 4))

    def run_both():
        base = GpuPartitionedEngine(dim=4).run(
            probe.counts, probe.class_sizes, probe.target
        )
        managed = GpuPartitionedEngine(dim=4, block_residency=True).run(
            probe.counts, probe.class_sizes, probe.target
        )
        return base, managed

    base, managed = benchmark.pedantic(run_both, rounds=1, iterations=1)
    text = render_table(
        [
            {
                "mode": "whole table (paper)",
                "table_resident_bytes": base.metrics["table_resident_bytes"],
                "simulated_s": base.simulated_s,
            },
            {
                "mode": "block residency (future work)",
                "table_resident_bytes": managed.metrics["table_resident_bytes"],
                "simulated_s": managed.simulated_s,
            },
        ],
        title="partitioned engine with and without residency management",
    )
    save_report("future_residency_engine", text)

    assert managed.metrics["table_resident_bytes"] < base.metrics[
        "table_resident_bytes"
    ]
    assert (managed.dp_result.table == base.dp_result.table).all()
