"""Shared infrastructure for the benchmark harness.

Run with::

    pytest benchmarks/ --benchmark-only            # reduced workloads
    REPRO_BENCH_FULL=1 pytest benchmarks/ --benchmark-only   # paper scale

Every exhibit bench renders its reproduction (tables / ASCII figures,
side by side with the paper's reported values where available) into
``benchmarks/results/<exhibit>.txt`` and attaches the headline numbers
to the pytest-benchmark record via ``extra_info``.  The wall time that
pytest-benchmark measures is the harness cost; the *simulated* hardware
seconds inside the result files are the quantities that reproduce the
paper.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def full_mode() -> bool:
    """Whether paper-scale workloads were requested (REPRO_BENCH_FULL=1)."""
    return os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def full() -> bool:
    return full_mode()


@pytest.fixture
def save_report(results_dir, full):
    """Writer: ``save_report(name, text)`` -> benchmarks/results/.

    Full-mode runs own the canonical ``<name>.txt`` artifacts (the ones
    EXPERIMENTS.md quotes); reduced runs write ``<name>-reduced.txt``
    so a quick check never clobbers the paper-scale results.
    """

    def _save(name: str, text: str) -> Path:
        suffix = "" if full else "-reduced"
        path = results_dir / f"{name}{suffix}.txt"
        path.write_text(text + "\n")
        return path

    return _save
