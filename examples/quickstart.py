"""Quickstart: schedule jobs on identical machines with the PTAS.

Runs the Hochbaum-Shmoys PTAS on a small instance, compares the result
against the classical heuristics and the true optimum, and shows the
quarter-split search doing the same job in fewer iterations.

Usage:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Instance, ptas_schedule
from repro.core.baselines import (
    branch_and_bound_optimal,
    list_schedule,
    lpt_schedule,
    multifit_schedule,
)


def main() -> None:
    # Eight jobs (processing times) on three identical machines.
    inst = Instance(times=(27, 19, 19, 15, 12, 8, 8, 5), machines=3)
    print(f"instance: {inst}")
    print()

    # The PTAS: makespan guaranteed within (1 + eps) of optimal.
    result = ptas_schedule(inst, eps=0.3)
    print(f"PTAS (eps=0.3):       makespan {result.makespan}")
    print(f"  proven bound:       <= {result.guarantee_bound():.1f}")
    print(f"  bisection took:     {result.iterations} iterations")
    print(f"  machine loads:      {result.schedule.loads().tolist()}")
    for machine in range(inst.machines):
        jobs = result.schedule.jobs_on(machine)
        times = [inst.times[j] for j in jobs]
        print(f"  machine {machine}: jobs {list(jobs)} (times {times})")
    print()

    # The paper's quarter-split search: same answer, fewer iterations.
    quarter = ptas_schedule(inst, eps=0.3, search="quarter")
    print(
        f"quarter split:        makespan {quarter.makespan} "
        f"in {quarter.iterations} iterations "
        f"(vs {result.iterations} for plain bisection)"
    )
    print()

    # Classical baselines and the exact optimum for comparison.
    print(f"list scheduling:      makespan {list_schedule(inst).makespan}")
    print(f"LPT:                  makespan {lpt_schedule(inst).makespan}")
    print(f"MULTIFIT:             makespan {multifit_schedule(inst).makespan}")
    optimum = branch_and_bound_optimal(inst)
    print(f"exact optimum:        makespan {optimum.makespan}")
    print()

    ratio = result.makespan / optimum.makespan
    print(f"PTAS / optimal = {ratio:.4f}  (guarantee: <= 1.30)")
    assert ratio <= 1.3 + 1e-9


if __name__ == "__main__":
    main()
