"""When does the GPU DP pay off?  A capacity-planning study.

Reproduces the paper's engineering question for a new workload: given a
stream of scheduling problems, should the high-dimensional DP run on
the multicore host (OpenMP-style) or on the GPU with the
data-partitioning scheme — and with how many partitioned dimensions?

The script harvests DP-tables of increasing size from random instances,
runs each on the simulated dual-Xeon and K40 engines, prints the
crossover, and shows the diagnostic metrics (utilisation, bus
efficiency, scan scope) that explain *why* each side wins — the same
analysis as the paper's §IV-B, packaged as a reusable decision aid.

Usage:  python examples/gpu_vs_cpu_study.py
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.analysis.workloads import harvest_tables
from repro.engines import GpuPartitionedEngine, OpenMPEngine


def main() -> None:
    tables = harvest_tables(
        groups=[(500, 8_000), (8_001, 60_000), (60_001, 250_000)],
        per_group=3,
        seed=7,
        pool_size=4000,
    )

    rows = []
    for t in tables:
        omp = OpenMPEngine(threads=28).run(t.counts, t.class_sizes, t.target)
        best_gpu = None
        best_dim = None
        for dim in (3, 5, 6, 7):
            gpu = GpuPartitionedEngine(dim=dim).run(
                t.counts, t.class_sizes, t.target
            )
            if best_gpu is None or gpu.simulated_s < best_gpu.simulated_s:
                best_gpu, best_dim = gpu, dim
        winner = "GPU" if best_gpu.simulated_s < omp.simulated_s else "CPU"
        rows.append(
            {
                "table_size": t.table_size,
                "dims": t.dims,
                "cpu_s": omp.simulated_s,
                "gpu_s": best_gpu.simulated_s,
                "best_dim": best_dim,
                "winner": winner,
                "gpu_util": best_gpu.metrics["utilization"],
                "scan_scope": best_gpu.metrics["scan_scope"],
            }
        )

    print(render_table(rows, title="CPU (OMP28) vs best GPU setting per DP-table"))
    print()

    crossers = [r["table_size"] for r in rows if r["winner"] == "GPU"]
    if crossers:
        print(f"GPU wins from table size ~{min(crossers)} upward.")
    print(
        "Why: small tables leave the GPU underutilised (see gpu_util) "
        "and pay kernel-launch/sync overheads; large tables amortise "
        "them while the CPU's whole-table sub-configuration scans "
        "(cost ~ size^2) explode."
    )


if __name__ == "__main__":
    main()
