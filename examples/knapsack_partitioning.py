"""Future work, realised: the partitioning scheme beyond scheduling.

The paper closes (§V) with two directions: generalise the
data-partitioning scheme to other high-dimensional DPs — "like
higher-dimensional knapsack problems" — and keep only the *needed*
blocks resident on the GPU.  This example demonstrates both:

1. a 3-dimensional 0/1 knapsack (capacity = CPU, RAM, disk budget for
   picking candidate services to consolidate onto one host) solved with
   the same blocked wavefront machinery and run through the same K40
   simulator;
2. the block-residency analysis of the scheduler DP, showing how much
   device memory the load/evict plan saves over keeping the whole
   DP-table on the GPU.

Usage:  python examples/knapsack_partitioning.py
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.analysis.synthetic import synthetic_probe
from repro.core.configs import enumerate_configurations
from repro.dptable.partition import BlockPartition
from repro.dptable.table import TableGeometry
from repro.extensions.knapsack import (
    KnapsackGpuEngine,
    knapsack_dp,
    knapsack_greedy,
    random_knapsack,
)
from repro.extensions.residency import BlockResidency


def knapsack_demo() -> None:
    print("=== 1. Multidimensional knapsack under the partitioning scheme ===")
    # 40 candidate services, budget (CPU=24 cores, RAM=18 GB, disk=20 units).
    inst = random_knapsack(
        40, capacity=(24, 18, 20), max_weight=6, max_value=100, seed=6
    )
    table = knapsack_dp(inst)
    optimal = int(table[tuple(inst.capacity)])
    greedy = knapsack_greedy(inst)
    print(
        f"{inst.n_items} items, capacity {inst.capacity} "
        f"(DP-table: {inst.table_size} cells)"
    )
    print(f"greedy value:  {greedy}")
    print(f"optimal value: {optimal}  (+{(optimal - greedy) / max(greedy, 1):.1%})")

    rows = []
    for dim in (1, 2, 3):
        run = KnapsackGpuEngine(dim=dim).run(inst)
        assert run.best_value == optimal
        rows.append(
            {
                "partition_dims": dim,
                "blocks": run.metrics["num_blocks"],
                "simulated_s": run.simulated_s,
                "utilization": run.metrics["utilization"],
            }
        )
    print(render_table(rows, title="same DP, increasing partition dimensions:"))
    print()


def residency_demo() -> None:
    print("=== 2. Block residency: only the needed blocks on the GPU ===")
    probe = synthetic_probe((12, 12, 12, 8))
    geometry = TableGeometry.from_counts(probe.counts)
    partition = BlockPartition(geometry, (4, 4, 4, 2))
    configs = enumerate_configurations(
        probe.class_sizes, probe.counts, probe.target
    )
    analysis = BlockResidency(partition, configs)

    print(
        f"table {geometry.shape} = {geometry.size} cells, "
        f"{partition.num_blocks} blocks of {partition.block_shape}"
    )
    print(f"dependency span (blocks per dimension): {analysis.dependency_span}")
    print(
        f"peak resident: {analysis.peak_resident_blocks}/{partition.num_blocks} "
        f"blocks = {analysis.peak_resident_bytes():,} bytes"
    )
    print(f"whole-table residency (paper's implementation): "
          f"{analysis.full_table_bytes():,} bytes")
    print(f"device-memory saving: {analysis.savings_ratio():.1%}")
    print()
    steps = list(analysis.plan())
    rows = [
        {
            "block_level": s.block_level,
            "execute": len(s.execute),
            "resident": len(s.resident),
            "load": len(s.load),
            "evict": len(s.evict),
        }
        for s in steps[:8]
    ]
    print(render_table(rows, title="load/execute/evict plan (first 8 block-levels):"))


def main() -> None:
    knapsack_demo()
    residency_demo()


if __name__ == "__main__":
    main()
