"""Batch-job scheduling on a homogeneous compute cluster.

The motivating workload for ``P || Cmax``: a nightly batch of analytics
jobs with known runtimes must finish as early as possible on a fleet of
identical nodes.  The batch is bimodal — many short ETL tasks plus a
few heavy model-training jobs — which is exactly where greedy
heuristics leave machines unbalanced and the PTAS's rounding pays off.

The script schedules the same workload with list scheduling, LPT, and
MULTIFIT for reference, then hands the real batch — the workload at
several accuracies at once — to the production front-end,
:class:`repro.service.BatchScheduler`: the requests fan out across a
thread pool, share one ``ProbeCache`` (probes from different
accuracies that round to the same geometry reuse each other's
configuration sets and DP-tables), and come back as one deterministic
report whose cache stats show how much of the batch was served from
cache.

Usage:  python examples/cluster_batch_scheduling.py
"""

from __future__ import annotations

from repro.core.baselines import list_schedule, lpt_schedule, multifit_schedule
from repro.core.improve import improve_schedule
from repro.core.instance import bimodal_instance
from repro.service import BatchRequest, BatchScheduler


def describe(name: str, makespan: int, loads, note: str = "") -> None:
    util = loads.sum() / (len(loads) * loads.max()) if loads.max() else 1.0
    print(
        f"{name:<22} makespan {makespan:>6}   "
        f"fleet utilisation {util:6.1%}   {note}"
    )


def main() -> None:
    # 120 batch jobs on 10 nodes: 75% short ETL tasks (5-30 min),
    # 25% heavy training jobs (180-300 min).
    batch = bimodal_instance(
        n_jobs=120,
        machines=10,
        short_range=(5, 30),
        long_range=(180, 300),
        long_fraction=0.25,
        seed=2024,
        name="nightly-batch",
    )
    print(f"workload: {batch}")
    lower_bound = max(batch.area_bound, batch.max_time)
    print(f"no schedule can beat {lower_bound} minutes (volume/longest-job bound)")
    print()

    s = list_schedule(batch)
    describe("list scheduling", s.makespan, s.loads(), "(submission order)")

    s = lpt_schedule(batch)
    describe("LPT", s.makespan, s.loads(), "(longest first)")

    s = multifit_schedule(batch)
    describe("MULTIFIT", s.makespan, s.loads(), "(bin-packing bisection)")

    # The accuracy sweep as one batch: three requests, three worker
    # threads, one shared probe cache.  Results are deterministic and
    # identical to running ptas_schedule three times by hand.
    scheduler = BatchScheduler(backend="vectorized", workers=3, search="quarter")
    report = scheduler.run(
        [
            BatchRequest(instance=batch, eps=eps, name=f"PTAS eps={eps}")
            for eps in (0.5, 0.3, 0.2)
        ]
    )
    for req_result in report.results:
        result = req_result.result
        describe(
            req_result.name,
            result.makespan,
            result.schedule.loads(),
            f"(proven <= {result.guarantee_bound():.0f}, "
            f"{result.iterations} quarter-split iterations)",
        )

    finest = report.results[-1].result
    polished = improve_schedule(finest.schedule)
    describe(
        "PTAS eps=0.2 + polish",
        polished.schedule.makespan,
        polished.schedule.loads(),
        f"({polished.moves} moves, {polished.swaps} swaps — guarantee retained)",
    )

    print()
    stats = report.cache_stats
    print(
        f"batch: {report.total_probes} DP probes across "
        f"{len(report.results)} requests on {report.workers} workers "
        f"in {report.wall_s:.2f}s"
    )
    print(
        f"shared probe cache: {stats.total_hits} hits / "
        f"{stats.total_hits + stats.total_misses} lookups "
        f"(DP-table hit rate {stats.hit_rate('dp'):.0%}) — "
        "see docs/PERFORMANCE.md"
    )
    print(
        "The PTAS bounds are *guarantees*: even without knowing the "
        "optimum, the batch provably cannot finish more than (1+eps)x "
        "earlier than the reported schedule."
    )


if __name__ == "__main__":
    main()
