"""Run the wavefront DP in parallel on *this machine's* cores — and measure.

The simulators model the paper's hardware; this example exercises the
real thing: ``repro.parallel.parallel_wavefront_dp`` executes the
anti-diagonal wavefront across OS processes over a shared-memory
DP-table — the same parallel structure as the paper's OpenMP baseline,
on whatever cores you have.

It solves one probe serially and in parallel, verifies bit-identical
tables, and reports the wall-clock comparison.  Expect an honest
result: at PTAS-realistic configuration counts the vectorized numpy
wavefront is *memory-bandwidth-bound*, so extra processes often do not
help — the "no optimization without measuring" lesson, and the reason
the paper needed a GPU (not more CPU threads) once its per-cell work
exploded with the whole-table sub-configuration searches.  The OpenMP
baseline it reproduces has per-cell costs thousands of times larger
than one numpy gather, which is where the level parallelism pays.

Usage:  python examples/host_parallel_solver.py [workers]
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

from repro.analysis.synthetic import synthetic_probe
from repro.parallel import parallel_wavefront_dp


def timed(label: str, fn):
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    print(f"{label:<28} {elapsed:8.2f} s")
    return result, elapsed


def main() -> None:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else min(4, os.cpu_count() or 1)

    # A 5-dimensional, ~538k-cell probe (the paper's Fig. 3c territory).
    probe = synthetic_probe((14, 14, 14, 14, 14))
    configs = probe.configs()
    print(
        f"DP-table: shape {probe.table_shape}, {probe.table_size} cells, "
        f"{configs.shape[0]} machine configurations"
    )
    print()

    serial, t1 = timed(
        "1 worker (serial)",
        lambda: parallel_wavefront_dp(
            probe.counts, probe.class_sizes, probe.target, configs, workers=1
        ),
    )
    parallel, tn = timed(
        f"{workers} workers",
        lambda: parallel_wavefront_dp(
            probe.counts,
            probe.class_sizes,
            probe.target,
            configs,
            workers=workers,
            min_parallel_level=2048,
        ),
    )

    assert np.array_equal(serial.table, parallel.table), "results must be identical"
    print()
    print(f"identical tables, OPT(N) = {serial.opt}")
    speedup = t1 / tn if tn > 0 else float("inf")
    print(f"wall-clock ratio: {speedup:.2f}x on {workers} workers")
    print()
    if speedup < 1.3:
        print(
            "As measured: little or no speedup.  The per-level numpy "
            "gathers are already memory-bandwidth-bound, so the level "
            "parallelism has nothing to feed the extra cores — exactly "
            "why 'vectorize first, parallelize second' is the rule, and "
            "why the paper's OpenMP baseline (whose per-cell work is "
            "thousands of ops, not one gather) does profit from its "
            "anti-diagonal parallel-for while this numpy kernel does not."
        )
    else:
        print(
            "This machine shows a real speedup: its core count and "
            "memory system leave headroom beyond one numpy stream.  "
            "The wavefront still caps scaling — early/late levels are "
            "too narrow to feed every core (the paper's §III-E "
            "concurrency loss)."
        )


if __name__ == "__main__":
    main()
