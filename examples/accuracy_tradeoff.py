"""The eps knob: solution quality vs DP-table size.

The PTAS's accuracy parameter trades schedule quality against work: a
smaller ``eps`` means more rounding classes (``k = ceil(1/eps)``, up to
``k^2`` classes), hence higher-dimensional DP-tables — the
dimensionality explosion the paper's GPU scheme exists to tame.

This script sweeps eps on one instance and reports, per setting: the
achieved makespan, the true gap to optimal, the largest DP-table the
bisection had to fill, and the number of non-zero dimensions — making
the cost of accuracy concrete.

Usage:  python examples/accuracy_tradeoff.py
"""

from __future__ import annotations

from repro import ptas_schedule, uniform_instance
from repro.analysis.report import render_table
from repro.core.baselines import branch_and_bound_optimal, lpt_schedule


def main() -> None:
    inst = uniform_instance(18, 4, low=5, high=60, seed=99, name="sweep")
    optimum = branch_and_bound_optimal(inst).makespan
    lpt = lpt_schedule(inst).makespan
    print(f"instance: {inst}")
    print(f"exact optimum: {optimum}   LPT: {lpt}")
    print()

    rows = []
    for eps in (1.0, 0.5, 0.34, 0.3, 0.25, 0.2):
        result = ptas_schedule(inst, eps=eps, search="quarter")
        dims = max((p.rounded.dims for p in result.probes), default=0)
        rows.append(
            {
                "eps": eps,
                "makespan": result.makespan,
                "gap_vs_opt": f"{result.makespan / optimum - 1:.2%}",
                "guaranteed": f"{eps:.0%}",
                "max_table": max(result.dp_table_sizes),
                "max_dims": dims,
                "probes": len(result.probes),
            }
        )

    print(render_table(rows, title="accuracy vs DP cost (one instance)"))
    print()
    print(
        "Shrinking eps tightens the guarantee but inflates the DP-table "
        "(both its size and its dimensionality) — at eps=0.2 the table "
        "has up to k^2 = 25 classes.  This growth is why the paper "
        "parallelises the high-dimensional DP on the GPU."
    )

    for row in rows:
        achieved = row["makespan"] / optimum - 1
        assert achieved <= row["eps"] + 1e-9, "guarantee violated!"


if __name__ == "__main__":
    main()
