"""Watch the blocked schedule execute: a device timeline.

Attaches the tracer to the partitioned GPU engine's simulator and draws
an ASCII Gantt chart of the kernel stream activity — making the paper's
§III-E narrative visible: the block-level wavefront keeps four streams
busy in the middle of the table and starves them at the narrow head and
tail, which is exactly the idle-core effect that lets the CPU win small
tables.

Also demonstrates the hybrid router deciding, probe by probe, which
device a PTAS run should use.

Usage:  python examples/device_timeline.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.synthetic import synthetic_probe
from repro.dptable.partition import BlockPartition, compute_divisor
from repro.dptable.table import TableGeometry
from repro.engines import HybridEngine
from repro.engines.costmodel import DEFAULT_COSTS, WorkProfile
from repro.gpusim import GpuSimulator, KernelSpec, TraceRecorder, render_timeline
from repro.gpusim.memory import AccessPattern
from repro.gpusim.spec import KEPLER_K40
from repro.core.instance import uniform_instance
from repro.core.ptas import ptas_schedule


def timeline_demo() -> None:
    print("=== blocked-schedule timeline (Alg. 4+5 on the simulated K40) ===")
    probe = synthetic_probe((6, 6, 6, 4, 4))  # 6912 cells
    geometry = TableGeometry.from_counts(probe.counts)
    partition = BlockPartition(geometry, compute_divisor(geometry.shape, 5))
    profile = WorkProfile(probe.counts, probe.class_sizes, probe.target)

    sim = GpuSimulator(KEPLER_K40)
    recorder = TraceRecorder()
    recorder.attach(sim)

    op = KEPLER_K40.op_time_s
    scan = profile.scan_elements(partition.cells_per_block)
    cost = (
        profile.thread_ops(DEFAULT_COSTS)
        + scan * DEFAULT_COSTS.gpu_scan_ops_per_element
    ) * op

    block_ids = partition.cell_block_ids
    inlevels = partition.cell_inblock_levels
    for level_blocks in partition.iter_block_levels():
        for i, block in enumerate(level_blocks):
            bid = partition.block_grid.ravel(block)
            for lvl in range(partition.num_inblock_levels):
                cells = np.flatnonzero((block_ids == bid) & (inlevels == lvl))
                if cells.size == 0:
                    continue
                sim.launch(
                    KernelSpec(
                        name=f"FindOPT-b{bid}-l{lvl}",
                        thread_times=cost[cells],
                        mem_elements=int(scan[cells].sum()),
                        mem_pattern=AccessPattern.COALESCED,
                        dynamic_children=2 * int(cells.size),
                    ),
                    stream=i % 4,
                )
        sim.synchronize()

    print(
        f"table {geometry.shape} = {geometry.size} cells, "
        f"{partition.num_blocks} blocks, {len(recorder.events)} kernels"
    )
    print(render_timeline(recorder, width=72))
    print(
        "\nNote the idle stretches at the head/tail block-levels — the "
        "concurrency loss §III-E describes."
    )
    print()


def hybrid_demo() -> None:
    print("=== hybrid routing over one PTAS run ===")
    inst = uniform_instance(62, 16, low=5, high=100, seed=1566923139)
    engine = HybridEngine(dim=6)
    result = ptas_schedule(inst, eps=0.3, search="quarter", dp_solver=engine)
    print(f"instance: {inst}")
    print(f"makespan {result.makespan} in {result.iterations} quarter-split iterations")
    sizes = [run.table_size for run in engine.runs]
    for size, choice in zip(sizes, engine.choices):
        print(f"  probe table {size:>8} cells -> {choice.upper()}")
    print(
        f"total simulated time {engine.total_simulated_s:.4f}s "
        f"(CPU {engine.cpu_engine.total_simulated_s:.4f}s + "
        f"GPU {engine.gpu_engine.total_simulated_s:.4f}s)"
    )


def main() -> None:
    timeline_demo()
    hybrid_demo()


if __name__ == "__main__":
    main()
